#include "mem/dram_channel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tt::mem {

DramChannel::DramChannel(sim::EventQueue &events, const DramConfig &config)
    : events_(events), config_(config),
      banks_(static_cast<std::size_t>(config.totalBanks())),
      ranks_(static_cast<std::size_t>(config.ranks))
{
    tt_assert(config_.ranks >= 1 && config_.banks_per_rank >= 1,
              "channel needs at least one bank");
    tt_assert(config_.row_bytes % kLineBytes == 0,
              "row size must be a whole number of lines");
}

void
DramChannel::mapAddress(std::uint64_t line_addr, int &bank,
                        std::uint64_t &row) const
{
    const std::uint64_t lines_per_row = config_.linesPerRow();
    const auto total_banks =
        static_cast<std::uint64_t>(config_.totalBanks());
    if (config_.mapping == AddressMapping::kPageInterleave) {
        // A stream walks one full row buffer, then continues in the
        // next bank: long row-hit runs, banks covered over time.
        const std::uint64_t row_index = line_addr / lines_per_row;
        bank = static_cast<int>(row_index % total_banks);
        row = row_index / total_banks;
    } else {
        // Consecutive lines round-robin the banks; the row advances
        // once per full sweep of a row's worth of lines in each bank.
        bank = static_cast<int>(line_addr % total_banks);
        const std::uint64_t stripe = line_addr / total_banks;
        row = stripe / lines_per_row;
    }
}

void
DramChannel::submit(DramRequest request)
{
    Pending pending;
    pending.req = std::move(request);
    pending.arrival = events_.now();
    mapAddress(pending.req.line_addr, pending.bank, pending.row);
    queue_.push_back(std::move(pending));
    ++in_flight_;
    maybeSchedulePick();
}

void
DramChannel::maybeSchedulePick()
{
    if (pick_scheduled_ || queue_.empty())
        return;
    pick_scheduled_ = true;
    const sim::Tick when = std::max(events_.now(), bus_free_);
    events_.schedule(when, [this] { pick(); });
}

sim::Tick
DramChannel::prepLatency(const Bank &bank, std::uint64_t row) const
{
    if (!bank.row_open)
        return config_.t_rcd; // activate the row
    if (bank.open_row == row)
        return 0; // row hit
    // Precharge + activate; write recovery gates the precharge when
    // the bank's last column access was a write.
    const sim::Tick recovery = bank.last_was_write ? config_.t_wr : 0;
    return recovery + config_.t_rp + config_.t_rcd;
}

sim::Tick
DramChannel::refreshAdjust(int rank, sim::Tick t)
{
    if (config_.disable_refresh)
        return t;
    // Rank refreshes are staggered: rank r refreshes during
    // [offset_r + k*tREFI, offset_r + k*tREFI + tRFC) for k >= 1
    // (the first refresh falls one full interval after start-up).
    const sim::Tick period = config_.t_refi;
    const sim::Tick offset =
        static_cast<sim::Tick>(rank) * period /
        static_cast<sim::Tick>(config_.ranks);
    if (t < offset + period)
        return t;
    const sim::Tick k = (t - offset) / period;
    const sim::Tick window_start = offset + k * period;
    if (t < window_start + config_.t_rfc) {
        ++stats_.refresh_stalls;
        return window_start + config_.t_rfc;
    }
    return t;
}

void
DramChannel::applyRefreshToBanks(int rank, sim::Tick now)
{
    if (config_.disable_refresh)
        return;
    // If a refresh window for this rank completed since we last
    // looked, it precharged every row in the rank.
    const sim::Tick period = config_.t_refi;
    const sim::Tick offset =
        static_cast<sim::Tick>(rank) * period /
        static_cast<sim::Tick>(config_.ranks);
    if (now < offset + period + config_.t_rfc)
        return; // the first refresh (k = 1) has not completed yet
    const sim::Tick k = (now - offset - config_.t_rfc) / period;
    const sim::Tick last_end = offset + k * period + config_.t_rfc;
    Rank &state = ranks_[static_cast<std::size_t>(rank)];
    if (last_end <= state.refresh_applied_until)
        return;
    state.refresh_applied_until = last_end;
    const int first = rank * config_.banks_per_rank;
    for (int b = first; b < first + config_.banks_per_rank; ++b) {
        Bank &bank = banks_[static_cast<std::size_t>(b)];
        if (bank.ready < last_end) {
            bank.row_open = false;
            bank.hit_streak = 0;
        }
    }
}

void
DramChannel::pick()
{
    pick_scheduled_ = false;
    if (queue_.empty())
        return;

    const sim::Tick now = events_.now();
    for (int r = 0; r < config_.ranks; ++r)
        applyRefreshToBanks(r, now);

    // FR-FCFS: oldest row hit first, capped so a hit streak cannot
    // starve the other requesters; otherwise oldest request.
    std::size_t best = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const Pending &cand = queue_[i];
        const Bank &bank = banks_[static_cast<std::size_t>(cand.bank)];
        const bool is_hit =
            bank.row_open && bank.open_row == cand.row &&
            bank.ready <= now;
        if (is_hit && bank.hit_streak < config_.max_row_hit_streak) {
            best = i;
            break;
        }
    }

    Pending chosen = std::move(queue_[best]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));

    Bank &bank = banks_[static_cast<std::size_t>(chosen.bank)];
    const int rank_index = rankOf(chosen.bank);
    Rank &rank = ranks_[static_cast<std::size_t>(rank_index)];

    const sim::Tick prep = prepLatency(bank, chosen.row);
    const bool activates = prep != 0;
    sim::Tick cmd_ready = std::max(now, bank.ready);
    if (activates) {
        // Activation pacing: tRRD from the rank's last ACT, tFAW
        // over its last four ACTs (both only once real activations
        // populate the history).
        if (rank.act_count >= 1)
            cmd_ready =
                std::max(cmd_ready, rank.last_act + config_.t_rrd);
        if (rank.act_count >= 4)
            cmd_ready = std::max(
                cmd_ready, rank.acts[rank.act_head] + config_.t_faw);
    }
    cmd_ready = refreshAdjust(rank_index, cmd_ready);
    cmd_ready += prep;

    // Bus turnaround gaps relative to the previous transfer.
    sim::Tick bus_ready = bus_free_;
    if (last_rank_ >= 0 && last_rank_ != rank_index) {
        bus_ready += config_.t_rtrs;
        ++stats_.rank_switches;
    } else if (last_was_write_ && !chosen.req.is_write) {
        bus_ready += config_.t_wtr;
        ++stats_.write_read_turnarounds;
    }

    const sim::Tick data_start = std::max(cmd_ready, bus_ready);
    const sim::Tick data_end = data_start + config_.t_burst;

    // Statistics.
    if (!bank.row_open)
        ++stats_.row_misses;
    else if (bank.open_row == chosen.row)
        ++stats_.row_hits;
    else
        ++stats_.row_conflicts;
    if (chosen.req.is_write)
        ++stats_.writes;
    else
        ++stats_.reads;
    stats_.queue_wait_ticks += data_start - chosen.arrival;
    stats_.busy_ticks += config_.t_burst;

    // Bank and rank bookkeeping.
    if (bank.row_open && bank.open_row == chosen.row) {
        ++bank.hit_streak;
    } else {
        bank.hit_streak = 1;
    }
    if (activates) {
        const sim::Tick act_at = cmd_ready - config_.t_rcd;
        rank.acts[rank.act_head] = act_at;
        rank.act_head = (rank.act_head + 1) % 4;
        rank.last_act = act_at;
        ++rank.act_count;
    }
    if (config_.page_policy == PagePolicy::kClosed) {
        // Auto-precharge: the row closes behind the access (fold the
        // precharge into the bank busy time).
        bank.row_open = false;
        bank.ready = data_end + config_.t_rp +
                     (chosen.req.is_write ? config_.t_wr : 0);
        bank.hit_streak = 0;
    } else {
        bank.row_open = true;
        bank.open_row = chosen.row;
        bank.ready = data_end;
    }
    bank.last_was_write = chosen.req.is_write;

    bus_free_ = data_end;
    last_rank_ = rank_index;
    last_was_write_ = chosen.req.is_write;

    // Both directions complete a CAS latency after the data slot:
    // reads when the data returns, stores when the line's ownership
    // round trip finishes (ordinary cached stores read-for-ownership
    // before retiring, so their visible cost mirrors a read).
    const sim::Tick done = data_end + config_.t_cl;
    auto callback = std::move(chosen.req.on_complete);
    events_.schedule(done, [this, cb = std::move(callback)] {
        --in_flight_;
        if (cb)
            cb();
    });

    maybeSchedulePick();
}

double
DramChannel::busUtilisation() const
{
    const sim::Tick now = events_.now();
    if (now == 0)
        return 0.0;
    return static_cast<double>(stats_.busy_ticks) /
           static_cast<double>(now);
}

double
DramChannel::rowHitRate() const
{
    const std::uint64_t total =
        stats_.row_hits + stats_.row_misses + stats_.row_conflicts;
    if (total == 0)
        return 0.0;
    return static_cast<double>(stats_.row_hits) /
           static_cast<double>(total);
}

} // namespace tt::mem
