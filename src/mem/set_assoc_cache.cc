#include "mem/set_assoc_cache.hh"

#include "util/logging.hh"

namespace tt::mem {

SetAssocCache::SetAssocCache(std::uint64_t capacity_bytes, int ways,
                             std::uint64_t line_bytes,
                             Replacement replacement,
                             std::uint64_t seed)
    : capacity_(capacity_bytes), ways_(ways), line_bytes_(line_bytes),
      sets_(0), replacement_(replacement), rng_(seed)
{
    tt_assert(ways_ >= 1, "cache needs at least one way");
    tt_assert(line_bytes_ > 0, "line size must be positive");
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(ways_) * line_bytes_;
    tt_assert(capacity_ % way_bytes == 0,
              "capacity must be a multiple of ways * line size");
    sets_ = capacity_ / way_bytes;
    tt_assert(sets_ >= 1, "cache must have at least one set");
    lines_.assign(sets_ * static_cast<std::uint64_t>(ways_), Line{});
}

bool
SetAssocCache::access(std::uint64_t addr)
{
    const std::uint64_t line_addr = addr / line_bytes_;
    const std::uint64_t set = line_addr % sets_;
    const std::uint64_t tag = line_addr / sets_;
    Line *base = &lines_[set * static_cast<std::uint64_t>(ways_)];
    ++use_clock_;

    // Hit?
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = use_clock_;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;

    // Fill an invalid way if any.
    for (int w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            base[w] = Line{true, tag, use_clock_};
            return false;
        }
    }

    // Evict.
    int victim = 0;
    if (replacement_ == Replacement::kLru) {
        for (int w = 1; w < ways_; ++w)
            if (base[w].lru < base[victim].lru)
                victim = w;
    } else {
        victim = static_cast<int>(
            rng_.nextBounded(static_cast<std::uint64_t>(ways_)));
    }
    base[victim] = Line{true, tag, use_clock_};
    ++stats_.evictions;
    return false;
}

std::uint64_t
SetAssocCache::accessRange(std::uint64_t base, std::uint64_t bytes)
{
    std::uint64_t hits = 0;
    for (std::uint64_t offset = 0; offset < bytes;
         offset += line_bytes_) {
        hits += access(base + offset) ? 1 : 0;
    }
    return hits;
}

void
SetAssocCache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

std::uint64_t
SetAssocCache::occupancyBytes() const
{
    std::uint64_t valid = 0;
    for (const Line &line : lines_)
        valid += line.valid ? 1 : 0;
    return valid * line_bytes_;
}

} // namespace tt::mem
