#include "mem/dram_config.hh"

namespace tt::mem {

DramConfig
DramConfig::ddr3_1333()
{
    // DDR3-1333H, tCK = 1.5 ns, CL9-9-9; 2 Gb parts.
    DramConfig config;
    config.t_burst = sim::fromNs(6.0);
    config.t_cl = sim::fromNs(13.5);
    config.t_rcd = sim::fromNs(13.5);
    config.t_rp = sim::fromNs(13.5);
    config.t_wr = sim::fromNs(15.0);
    config.t_rrd = sim::fromNs(6.0);
    config.t_faw = sim::fromNs(30.0);
    config.t_wtr = sim::fromNs(7.5);
    config.t_rtrs = sim::fromNs(1.5);
    config.t_rfc = sim::fromNs(160.0);
    return config;
}

} // namespace tt::mem
