/**
 * @file
 * A concrete set-associative cache model with LRU or pseudo-random
 * replacement.
 *
 * The experiment pipeline uses the lightweight SharedLlc occupancy
 * model (llc.hh) for speed; this tag-accurate model exists to
 * *validate* that approximation: tests stream task working sets
 * through it and compare measured hit rates against the occupancy
 * model's proportional-spill prediction (good match under random
 * replacement, which approximates the hashed/pseudo-LRU behaviour of
 * real LLCs; textbook-LRU thrashes pathologically on cyclic sweeps,
 * which is exactly why proportional spill is the better first-order
 * model -- see test_set_assoc_cache.cc).
 */

#ifndef TT_MEM_SET_ASSOC_CACHE_HH
#define TT_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace tt::mem {

/** Replacement policy of SetAssocCache. */
enum class Replacement
{
    kLru,    ///< textbook least-recently-used
    kRandom, ///< deterministic pseudo-random victim
};

/** Tag-accurate set-associative cache. */
class SetAssocCache
{
  public:
    /** Aggregate statistics. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
        }
    };

    /**
     * @param capacity_bytes total capacity; must be divisible by
     *        ways * line_bytes
     * @param ways associativity
     * @param line_bytes line size
     * @param replacement victim selection policy
     * @param seed RNG seed for kRandom (deterministic)
     */
    SetAssocCache(std::uint64_t capacity_bytes, int ways,
                  std::uint64_t line_bytes = 64,
                  Replacement replacement = Replacement::kLru,
                  std::uint64_t seed = 1);

    /**
     * Access one byte address; returns true on hit. A miss installs
     * the line (allocate-on-miss for reads and writes alike).
     */
    bool access(std::uint64_t addr);

    /** Touch every line of [base, base+bytes); returns hits. */
    std::uint64_t accessRange(std::uint64_t base, std::uint64_t bytes);

    /** Drop all contents (statistics are kept). */
    void flush();

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }

    std::uint64_t capacity() const { return capacity_; }
    int ways() const { return ways_; }
    std::uint64_t sets() const { return sets_; }

    /** Bytes currently occupied by valid lines. */
    std::uint64_t occupancyBytes() const;

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; ///< last-use stamp
    };

    std::uint64_t capacity_;
    int ways_;
    std::uint64_t line_bytes_;
    std::uint64_t sets_;
    Replacement replacement_;
    Rng rng_;
    std::uint64_t use_clock_ = 0;
    std::vector<Line> lines_; ///< sets_ * ways_, set-major
    Stats stats_;
};

} // namespace tt::mem

#endif // TT_MEM_SET_ASSOC_CACHE_HH
