/**
 * @file
 * One DDR3 channel: per-bank row-buffer state, per-rank activation
 * and refresh constraints, a shared data bus with turnaround gaps,
 * and an FR-FCFS request scheduler.
 *
 * This is the component that produces the paper's central effect:
 * when k memory-task streams interleave on one channel, each stream's
 * lines wait longer for the data bus, suffer row-buffer conflicts
 * whenever two streams touch the same bank, and pay rank-switch /
 * write-read turnaround gaps that a solo stream avoids -- so the
 * per-task time T_mk grows with k (approximately T_ml + k*T_ql, the
 * queuing decomposition of Sec. IV-C).
 *
 * Modelled constraints (all request-granular, see dram_config.hh):
 *   row management  prep = 0 (hit) / tRCD (closed) / tWR?+tRP+tRCD
 *   activation      tRRD between ACTs, tFAW over any four ACTs/rank
 *   bus turnaround  tRTRS on rank switch, tWTR on write->read
 *   refresh         deterministic [k*tREFI, k*tREFI+tRFC) windows
 *                   per rank (staggered), gating command issue and
 *                   closing the rank's open rows
 */

#ifndef TT_MEM_DRAM_CHANNEL_HH
#define TT_MEM_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mem/dram_config.hh"
#include "sim/event_queue.hh"

namespace tt::mem {

/** One line-granular DRAM access. */
struct DramRequest
{
    std::uint64_t line_addr = 0; ///< global line number
    bool is_write = false;
    /** Invoked (at data-return time) when the access completes. */
    std::function<void()> on_complete;
};

/** Aggregate channel statistics. */
struct ChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;    ///< bank had no open row
    std::uint64_t row_conflicts = 0; ///< bank had a different row open
    std::uint64_t rank_switches = 0; ///< transfers paying tRTRS
    std::uint64_t write_read_turnarounds = 0; ///< transfers paying tWTR
    std::uint64_t refresh_stalls = 0; ///< commands delayed by refresh
    std::uint64_t queue_wait_ticks = 0; ///< sum of queueing delays
    sim::Tick busy_ticks = 0;        ///< data-bus occupancy
};

/** FR-FCFS DDR3 channel model. */
class DramChannel
{
  public:
    DramChannel(sim::EventQueue &events, const DramConfig &config);

    /** Enqueue an access; completion fires via the request callback. */
    void submit(DramRequest request);

    /** Requests accepted but not yet completed. */
    int inFlight() const { return in_flight_; }

    const ChannelStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

    /** Data-bus utilisation over [0, now]. */
    double busUtilisation() const;

    /** Row-hit fraction of all serviced accesses. */
    double rowHitRate() const;

    /**
     * Map a channel-local line address to (bank, row) under the
     * configured address mapping. Exposed for tests.
     */
    void mapAddress(std::uint64_t line_addr, int &bank,
                    std::uint64_t &row) const;

  private:
    struct Bank
    {
        bool row_open = false;
        std::uint64_t open_row = 0;
        sim::Tick ready = 0; ///< earliest tick for the next command
        bool last_was_write = false; ///< tWR gates the next precharge
        int hit_streak = 0;
    };

    struct Rank
    {
        /** Ring of the last four activation ticks (tFAW window). */
        sim::Tick acts[4] = {0, 0, 0, 0};
        int act_head = 0;
        std::uint64_t act_count = 0; ///< activations issued so far
        sim::Tick last_act = 0;
        /** End of the last refresh window already applied to banks. */
        sim::Tick refresh_applied_until = 0;
    };

    struct Pending
    {
        DramRequest req;
        sim::Tick arrival = 0;
        int bank = 0;
        std::uint64_t row = 0;
    };

    void maybeSchedulePick();
    void pick();
    /** Row-management latency this access would pay right now. */
    sim::Tick prepLatency(const Bank &bank, std::uint64_t row) const;
    /** Push `t` past any refresh window of `rank` covering it. */
    sim::Tick refreshAdjust(int rank, sim::Tick t);
    /** Close rows invalidated by refreshes that ended before `now`. */
    void applyRefreshToBanks(int rank, sim::Tick now);
    int rankOf(int bank) const { return bank / config_.banks_per_rank; }

    sim::EventQueue &events_;
    DramConfig config_;
    std::vector<Bank> banks_;
    std::vector<Rank> ranks_;
    std::deque<Pending> queue_;
    sim::Tick bus_free_ = 0;
    int last_rank_ = -1;          ///< rank of the previous transfer
    bool last_was_write_ = false; ///< direction of previous transfer
    bool pick_scheduled_ = false;
    int in_flight_ = 0;
    ChannelStats stats_;
};

} // namespace tt::mem

#endif // TT_MEM_DRAM_CHANNEL_HH
