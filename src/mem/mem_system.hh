/**
 * @file
 * MemorySystem: the facade the simulated cores talk to.
 *
 * Routes line-granular accesses to DDR3 channels (fine-grained line
 * interleaving, as on Nehalem), applies the constant uncore/
 * controller front-end latency to the round trip, and owns the
 * shared-LLC occupancy model.
 */

#ifndef TT_MEM_MEM_SYSTEM_HH
#define TT_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/dram_channel.hh"
#include "mem/dram_config.hh"
#include "mem/llc.hh"
#include "sim/event_queue.hh"

namespace tt::mem {

/** Configuration of the whole memory system. */
struct MemSystemConfig
{
    int channels = 1;               ///< 1-DIMM vs 2-DIMM (Fig. 18)
    DramConfig dram = DramConfig::ddr3_1066();
    /** Uncore + controller round-trip latency added to every miss. */
    sim::Tick frontend_latency = sim::fromNs(60.0);
    std::uint64_t llc_bytes = 8ULL * 1024 * 1024; ///< i7-860 L3
    /** LLC bytes pinned by code/stacks/metadata. */
    std::uint64_t llc_resident_bytes = 256ULL * 1024;
};

/** Channel-routing facade with LLC model. */
class MemorySystem
{
  public:
    MemorySystem(sim::EventQueue &events, const MemSystemConfig &config);

    /**
     * Issue one line access that misses the LLC (all DRAM traffic in
     * this model flows through here); `on_complete` fires when the
     * data is back at the requesting core.
     */
    void access(std::uint64_t line_addr, bool is_write,
                std::function<void()> on_complete);

    SharedLlc &llc() { return llc_; }
    const SharedLlc &llc() const { return llc_; }

    int channelCount() const { return static_cast<int>(channels_.size()); }
    const DramChannel &channel(int index) const;

    /** Sum of reads+writes across channels. */
    std::uint64_t totalAccesses() const;

    /** Peak bandwidth across all channels, bytes/second. */
    double peakBandwidth() const;

    const MemSystemConfig &config() const { return config_; }

  private:
    sim::EventQueue &events_;
    MemSystemConfig config_;
    SharedLlc llc_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
};

} // namespace tt::mem

#endif // TT_MEM_MEM_SYSTEM_HH
