#include "mem/mem_system.hh"

#include "util/logging.hh"

namespace tt::mem {

MemorySystem::MemorySystem(sim::EventQueue &events,
                           const MemSystemConfig &config)
    : events_(events), config_(config),
      llc_(config.llc_bytes, config.llc_resident_bytes)
{
    tt_assert(config_.channels >= 1, "need at least one channel");
    channels_.reserve(static_cast<std::size_t>(config_.channels));
    for (int c = 0; c < config_.channels; ++c)
        channels_.push_back(
            std::make_unique<DramChannel>(events_, config_.dram));
}

void
MemorySystem::access(std::uint64_t line_addr, bool is_write,
                     std::function<void()> on_complete)
{
    const auto n = static_cast<std::uint64_t>(config_.channels);
    const int channel = static_cast<int>(line_addr % n);
    const std::uint64_t local_line = line_addr / n;

    DramRequest request;
    request.line_addr = local_line;
    request.is_write = is_write;
    // The front-end (core -> uncore -> controller and back) adds a
    // constant latency to the round trip; apply it on the return
    // path so channel-level timing stays pure DRAM.
    request.on_complete = [this, cb = std::move(on_complete)]() mutable {
        if (!cb)
            return;
        events_.scheduleIn(config_.frontend_latency, std::move(cb));
    };
    channels_[static_cast<std::size_t>(channel)]->submit(
        std::move(request));
}

const DramChannel &
MemorySystem::channel(int index) const
{
    tt_assert(index >= 0 && index < channelCount(),
              "channel index out of range");
    return *channels_[static_cast<std::size_t>(index)];
}

std::uint64_t
MemorySystem::totalAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel->stats().reads + channel->stats().writes;
    return total;
}

double
MemorySystem::peakBandwidth() const
{
    return config_.dram.peakBandwidth() *
           static_cast<double>(config_.channels);
}

} // namespace tt::mem
