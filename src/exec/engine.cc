#include "exec/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/sample_guard.hh"
#include "obs/live.hh"
#include "obs/timeseries.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace tt::exec {

using stream::Task;
using stream::TaskId;
using stream::TaskKind;

namespace {

std::size_t
ringCapacity(const EngineOptions &options, int task_count)
{
    const auto wanted = std::min(
        options.trace_capacity, static_cast<std::size_t>(task_count));
    return std::max<std::size_t>(1, wanted);
}

/**
 * Wall-clock nanoseconds for the obs.overhead.* self-observability
 * counters: the real cost of observability code, measured with the
 * steady clock on every backend (simulated time would hide it).
 */
std::uint64_t
wallNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
ExecutionBackend::terminateProcess(int exit_code)
{
    std::fflush(nullptr);
    std::_Exit(exit_code);
}

Engine::Engine(const stream::TaskGraph &graph,
               core::SchedulingPolicy &policy,
               const EngineOptions &options)
    : graph_(graph), policy_(policy), options_(options)
{
    tt_assert(options_.max_task_retries >= 0,
              "retry budget cannot be negative");
    tt_assert(options_.retry_backoff_seconds >= 0.0,
              "backoff cannot be negative");
    tt_assert(options_.timeseries_out == nullptr ||
                  options_.timeseries_interval_seconds > 0.0,
              "sampling interval must be positive");
    tt_assert(options_.live_sink == nullptr ||
                  options_.live_interval_seconds > 0.0,
              "live snapshot interval must be positive");

    const auto n_tasks = static_cast<std::size_t>(graph_.taskCount());
    deps_left_ = std::vector<std::atomic<int>>(n_tasks);
    succs_.assign(n_tasks, {});
    attempts_.assign(n_tasks, 0);
    task_start_.assign(n_tasks, 0.0);
    task_end_.assign(n_tasks, 0.0);
    task_mtl_.assign(n_tasks, 0);
    pair_mem_mtl_.assign(static_cast<std::size_t>(graph_.pairCount()), 0);
    for (const Task &task : graph_.tasks()) {
        deps_left_[static_cast<std::size_t>(task.id)].store(
            static_cast<int>(task.deps.size()),
            std::memory_order_relaxed);
        for (TaskId dep : task.deps)
            succs_[static_cast<std::size_t>(dep)].push_back(task.id);
    }

    if (options_.arrival_plan != nullptr &&
        !options_.arrival_plan->empty()) {
        open_loop_ = true;
        tt_assert(graph_.phaseCount() == 1,
                  "open-loop runs require a single-phase graph "
                  "(arrivals replace phase barriers)");
        tt_assert(static_cast<int>(options_.arrival_plan->size()) ==
                      graph_.pairCount(),
                  "arrival plan offers ",
                  options_.arrival_plan->size(), " jobs for ",
                  graph_.pairCount(), " pairs");
        const auto n_pairs =
            static_cast<std::size_t>(graph_.pairCount());
        job_arrival_stamp_.assign(n_pairs, 0.0);
        job_slo_.assign(n_pairs, 0.0);
        for (const load::JobSpec &job : options_.arrival_plan->jobs) {
            tt_assert(job.pair >= 0 && job.pair < graph_.pairCount(),
                      "arrival plan names pair ", job.pair,
                      " outside the graph");
            tt_assert(
                deps_left_[static_cast<std::size_t>(
                               graph_.memoryTaskOf(job.pair))]
                        .load(std::memory_order_relaxed) == 0,
                "open-loop pairs must have dependency-free memory "
                "tasks");
        }
    }
}

void
Engine::activatePhaseLocked(int phase, double now)
{
    current_phase_ = phase;
    // Count first, publish the barrier count, then enqueue: in pull
    // mode a ring push is instantly poppable by a worker whose
    // completion decrements phase_remaining_, so the count must be
    // final before the first task escapes.
    int count = 0;
    for (const Task &task : graph_.tasks())
        if (task.phase == phase)
            ++count;
    phase_remaining_.store(count, std::memory_order_seq_cst);
    // Snapshot the initially-ready set BEFORE the first enqueue. In
    // pull mode an enqueued task is instantly poppable: a worker can
    // run and complete it lock-free while this loop is still
    // scanning, releasing a same-phase compute successor whose
    // deps_left_ then reads zero -- tripping the memory-only
    // invariant, which holds for the pre-activation state only.
    std::vector<const Task *> initially_ready;
    for (const Task &task : graph_.tasks()) {
        if (task.phase != phase)
            continue;
        if (deps_left_[static_cast<std::size_t>(task.id)].load(
                std::memory_order_relaxed) == 0) {
            tt_assert(task.kind == TaskKind::Memory,
                      "only memory tasks can be initially ready");
            initially_ready.push_back(&task);
        }
    }
    for (const Task *task : initially_ready) {
        // Closed-loop spans: the pair's "arrival" is the barrier
        // instant its memory task became runnable. Open before
        // the enqueue -- the completing worker appends to it.
        openSpan(task->pair, 0, now);
        enqueueMemoryReady(task->id);
    }
    tt_assert(count > 0 || graph_.empty(), "phase ", phase,
              " has no tasks");
}

void
Engine::enqueueMemoryReady(TaskId id)
{
    if (!pull_mode_) {
        ready_memory_.push_back(id);
        return;
    }
    const bool ok = ready_memory_ring_->tryPush(id);
    tt_assert(ok, "memory ready ring overflow (sized to task count)");
    wakeWorkers();
}

void
Engine::enqueueComputeReady(TaskId id)
{
    if (!pull_mode_) {
        ready_compute_.push_back(id);
        return;
    }
    const bool ok = ready_compute_ring_->tryPush(id);
    tt_assert(ok, "compute ready ring overflow (sized to task count)");
    wakeWorkers();
}

void
Engine::processArrivalsLocked(double upto)
{
    const auto &jobs = options_.arrival_plan->jobs;
    while (next_job_ < jobs.size() &&
           jobs[next_job_].arrival_seconds <= upto + 1e-12) {
        admitJobLocked(jobs[next_job_]);
        ++next_job_;
    }
}

void
Engine::scheduleNextArrivalLocked(double from)
{
    const auto &jobs = options_.arrival_plan->jobs;
    if (next_job_ >= jobs.size())
        return;
    scheduled_arrival_ = jobs[next_job_].arrival_seconds;
    arrival_token_ =
        backend_->after(std::max(scheduled_arrival_ - from, 0.0),
                        [this] { onArrivalTimer(); });
}

void
Engine::onArrivalTimer()
{
    std::lock_guard lock(mutex_);
    arrival_token_ = 0;
    if (finished_)
        return;
    if (run_failed_.load(std::memory_order_relaxed)) {
        // Stop offering work into a failed run; the jobs never
        // reached admission, so they are abandoned, not shed.
        next_job_ = options_.arrival_plan->size();
        maybeFinishLocked();
        return;
    }
    // Decisions key off the *plan* offset the timer targeted, not
    // the (jittery on host) clock reading, so both backends feed the
    // admission model identical inputs.
    processArrivalsLocked(scheduled_arrival_);
    scheduleNextArrivalLocked(scheduled_arrival_);
    tryScheduleLocked();
    maybeFinishLocked();
}

void
Engine::openSpan(int pair, int priority, double arrival)
{
    auto &span = open_span_[static_cast<std::size_t>(pair)];
    span = obs::JobSpan{};
    span.pair = pair;
    span.priority = priority;
    span.open_loop = open_loop_;
    span.arrival = arrival;
    // Release pairs with the fast path's acquire load: a worker that
    // sees the flag also sees the initialized span fields.
    span_open_[static_cast<std::size_t>(pair)].store(
        true, std::memory_order_release);
}

void
Engine::spanAttempt(stream::TaskId id, int worker,
                         const AttemptOutcome &outcome, bool failed,
                         double backoff_seconds)
{
    const Task &task = graph_.task(id);
    const auto pair = static_cast<std::size_t>(task.pair);
    if (!span_open_[pair].load(std::memory_order_acquire))
        return;
    obs::SpanAttempt attempt;
    attempt.task = id;
    attempt.is_memory = task.kind == TaskKind::Memory;
    attempt.attempt = attempts_[static_cast<std::size_t>(id)];
    attempt.worker = worker;
    attempt.start = outcome.start;
    attempt.end = outcome.end;
    attempt.failed = failed;
    attempt.backoff_seconds = backoff_seconds;
    if (outcome.has_counters) {
        attempt.has_counters = true;
        attempt.counters = outcome.counters;
    }
    open_span_[pair].attempts.push_back(attempt);
}

void
Engine::closeSpan(int pair, double end, obs::SpanOutcome outcome)
{
    const auto index = static_cast<std::size_t>(pair);
    if (!span_open_[index].load(std::memory_order_acquire))
        return;
    obs::JobSpan &span = open_span_[index];
    span.end = end;
    span.outcome = outcome;
    span.critical_path = obs::computeCriticalPath(span);
    const std::uint64_t t0 = wallNanos();
    span_buffer_->record(std::move(span));
    obs_trace_record_ns_ += wallNanos() - t0;
    span = obs::JobSpan{};
    span_open_[index].store(false, std::memory_order_release);
}

void
Engine::admitJobLocked(const load::JobSpec &job)
{
    const load::AdmissionOutcome out = admission_->onArrival(job);

    JobRecord record;
    record.pair = job.pair;
    record.arrival_seconds = job.arrival_seconds;
    record.priority = job.priority;
    record.decision = out.decision;
    record.shed_reason = out.shed_reason;
    record.state = out.state;
    record.backlog = out.backlog;
    record.predicted_response = out.predicted_response;
    job_log_.push_back(record);

    MetricsRegistry *metrics = options_.metrics;
    if (out.decision == load::AdmissionDecision::Shed) {
        // Shed before dispatch: the pair's two tasks never run and
        // the drain condition accounts for them explicitly.
        ++jobs_shed_;
        shed_tasks_ += 2;
        if (metrics != nullptr)
            metrics->add("runtime.jobs_shed", 1);
        // The span is terminal at the verdict: no attempts, zero
        // response, the shed reason preserved for attribution.
        const double stamp = backend_->now();
        openSpan(job.pair, job.priority, stamp);
        auto &span = open_span_[static_cast<std::size_t>(job.pair)];
        span.decision = out.decision;
        span.shed_reason = out.shed_reason;
        closeSpan(job.pair, stamp, obs::SpanOutcome::Shed);
    } else {
        ++jobs_admitted_;
        if (metrics != nullptr)
            metrics->add("runtime.jobs_admitted", 1);
        if (out.decision == load::AdmissionDecision::Delay) {
            ++jobs_delayed_;
            if (metrics != nullptr)
                metrics->add("runtime.jobs_delayed", 1);
        }
        const auto pair = static_cast<std::size_t>(job.pair);
        // Deadlines are judged on the engine clock: exact plan time
        // on the sim backend, the arrival timer's wall-clock firing
        // on the host (see docs/robustness.md).
        job_arrival_stamp_[pair] = backend_->now();
        job_slo_[pair] = job.slo_seconds;
        // Span first, enqueue second: a pull-mode worker can pop the
        // task the instant it is in the ring and append attempts to
        // the (pair-serialized) open span.
        openSpan(job.pair, job.priority, job_arrival_stamp_[pair]);
        open_span_[pair].decision = out.decision;
        enqueueMemoryReady(graph_.memoryTaskOf(job.pair));
    }

    if (out.state != backpressure_) {
        backpressure_ = out.state;
        if (metrics != nullptr)
            metrics->set("runtime.backpressure_state",
                         static_cast<double>(out.state));
        policy_.onBackpressure(backend_->now(), out.state,
                               out.backlog);
    }

    healthJobVerdictLocked(job, record);
}

void
Engine::tryScheduleLocked()
{
    if (pull_mode_)
        return; // workers pull their own work off the rings
    if (run_failed_.load(std::memory_order_relaxed) || finished_)
        return; // aborting: let in-flight tasks drain, dispatch nothing
    while (true) {
        // Lowest-numbered idle context: on the sim backend this fills
        // distinct physical cores before SMT siblings (see
        // SimMachine::coreOf); on the host it is simply deterministic.
        int context = -1;
        const int n = static_cast<int>(context_busy_.size());
        for (int c = 0; c < n; ++c) {
            if (!context_busy_[static_cast<std::size_t>(c)]) {
                context = c;
                break;
            }
        }
        if (context < 0)
            return;

        if (!ready_compute_.empty()) {
            const TaskId id = ready_compute_.front();
            ready_compute_.pop_front();
            dispatchLocked(context, id);
            continue;
        }
        if (!ready_memory_.empty() &&
            mem_in_flight_ < policy_.currentMtl()) {
            const TaskId id = ready_memory_.front();
            ready_memory_.pop_front();
            dispatchLocked(context, id);
            continue;
        }
        return;
    }
}

void
Engine::dispatchLocked(int context, TaskId id)
{
    const Task &task = graph_.task(id);
    context_busy_[static_cast<std::size_t>(context)] = true;
    running_[static_cast<std::size_t>(context)].store(
        id, std::memory_order_relaxed);

    const int mtl = policy_.currentMtl();
    task_mtl_[static_cast<std::size_t>(id)] = mtl;
    if (task.kind == TaskKind::Memory) {
        ++mem_in_flight_;
        peak_mem_in_flight_ =
            std::max(peak_mem_in_flight_, mem_in_flight_);
        tt_assert(mem_in_flight_ <= policy_.currentMtl(),
                  "MTL restriction violated by the scheduler");
        pair_mem_mtl_[static_cast<std::size_t>(task.pair)] = mtl;
    }

    startAttemptLocked(context, id);
}

void
Engine::startAttemptLocked(int context, TaskId id)
{
    AttemptSpec spec;
    spec.task = id;
    spec.attempt = attempts_[static_cast<std::size_t>(id)];
    spec.rerun_memory_first =
        spec.attempt > 0 && graph_.task(id).kind == TaskKind::Compute;
    const fault::FaultPlan *plan = options_.fault_plan;
    if (plan != nullptr && plan->enabled()) {
        spec.faults = plan->forTask(id, spec.attempt);
        spec.stall_seconds = plan->config().stall_seconds;
    }
    backend_->startAttempt(context, spec);
}

void
Engine::onAttemptDone(int context, const AttemptOutcome &outcome)
{
    if (pull_mode_) {
        const TaskId id = running_[static_cast<std::size_t>(context)]
                              .load(std::memory_order_relaxed);
        // Fast path: a successful memory attempt in a healthy run
        // completes without the scheduler mutex. Everything it
        // touches is worker-owned, pair-serialized or atomic.
        if (!outcome.failed &&
            graph_.task(id).kind == TaskKind::Memory &&
            !run_failed_.load(std::memory_order_acquire)) {
            completeMemoryFast(context, id, outcome);
            return;
        }
        std::lock_guard lock(mutex_);
        if (!outcome.failed) {
            completePullSlowLocked(context, id, outcome);
            maybeFinishLocked();
        } else {
            handlePullFailureLocked(context, id, outcome);
        }
        return;
    }

    std::lock_guard lock(mutex_);
    const TaskId id = running_[static_cast<std::size_t>(context)].load(
        std::memory_order_relaxed);

    if (!outcome.failed) {
        completeLocked(context, id, outcome);
        tryScheduleLocked();
        maybeFinishLocked();
        return;
    }

    const int attempt = attempts_[static_cast<std::size_t>(id)];
    if (!run_failed_.load(std::memory_order_relaxed) &&
        attempt < options_.max_task_retries) {
        const double backoff =
            std::min(options_.retry_backoff_seconds *
                         std::ldexp(1.0, attempt),
                     50e-3);
        // Record the failed attempt -- and the backoff it was
        // granted -- on the pair's span before bumping the counter.
        spanAttempt(id, context, outcome, true, backoff);
        ++attempts_[static_cast<std::size_t>(id)];
        task_retries_.fetch_add(1, std::memory_order_relaxed);
        if (MetricsRegistry *metrics = options_.metrics)
            metrics->add("runtime.task_retries", 1);
        retry_log_.push_back(RetryRecord{id, attempt});
        // The context stays reserved through the backoff so the retry
        // cannot be starved out by fresh dispatches.
        auto &pending = pending_retry_[static_cast<std::size_t>(context)];
        pending.active.store(true, std::memory_order_relaxed);
        pending.token = backend_->after(
            backoff, [this, context] { onRetryTimer(context); });
        return;
    }

    spanAttempt(id, context, outcome, true, 0.0);
    failTaskLocked(context, id, outcome.error);
    closeSpan(graph_.task(id).pair, outcome.end,
                    obs::SpanOutcome::Failed);
    maybeFinishLocked();
}

void
Engine::onRetryTimer(int context)
{
    std::lock_guard lock(mutex_);
    auto &pending = pending_retry_[static_cast<std::size_t>(context)];
    if (!pending.active.load(std::memory_order_relaxed) || finished_)
        return; // already cancelled / abandoned by a failed run
    pending.active.store(false, std::memory_order_relaxed);
    pending.token = 0;
    const TaskId id = running_[static_cast<std::size_t>(context)].load(
        std::memory_order_relaxed);
    if (run_failed_.load(std::memory_order_relaxed)) {
        abandonContextLocked(context, id);
        maybeFinishLocked();
        return;
    }
    startAttemptLocked(context, id);
}

void
Engine::onRetryTimerPull(int worker)
{
    std::lock_guard lock(mutex_);
    auto &pending = pending_retry_[static_cast<std::size_t>(worker)];
    if (!pending.active.load(std::memory_order_relaxed) || finished_)
        return; // cancelled (failed run abandoned the reservation)
    pending.active.store(false, std::memory_order_relaxed);
    pending.token = 0;
    // Hand the stashed retry to its owning worker. The worker checks
    // run_failed_ itself and abandons instead of re-running if the
    // run aborted between grant and fire.
    retry_ready_[static_cast<std::size_t>(worker)].store(
        true, std::memory_order_seq_cst);
    wakeWorkers();
}

void
Engine::recordAttemptEvent(int worker, TaskId id,
                           const AttemptOutcome &outcome)
{
    const Task &task = graph_.task(id);
    task_start_[static_cast<std::size_t>(id)] = outcome.start;
    task_end_[static_cast<std::size_t>(id)] = outcome.end;
    tasks_done_.fetch_add(1, std::memory_order_seq_cst);

    obs::TaskEvent event;
    event.task = id;
    event.pair = task.pair;
    event.phase = task.phase;
    event.is_memory = task.kind == TaskKind::Memory;
    event.worker = worker;
    event.start = outcome.start;
    event.end = outcome.end;
    event.mtl = task_mtl_[static_cast<std::size_t>(id)];
    event.attempt = attempts_[static_cast<std::size_t>(id)];
    if (outcome.has_counters) {
        // The delta covers this (successful) attempt's body only --
        // failed attempts never reach here, so retries are never
        // merged into one event.
        event.has_counters = true;
        event.counters = outcome.counters;
        if (pull_mode_) {
            // Worker-local aggregation, folded after the workers
            // joined (finishResult) -- no synchronisation needed.
            auto &wc =
                worker_counters_[static_cast<std::size_t>(worker)];
            wc.saw = true;
            wc.totals += outcome.counters;
        } else {
            saw_counters_ = true;
            counter_totals_ += outcome.counters;
        }
    }
    {
        const std::uint64_t t0 = wallNanos();
        tracer_->ring(worker).record(event);
        obs_trace_record_ns_.fetch_add(wallNanos() - t0,
                                       std::memory_order_relaxed);
    }
    spanAttempt(id, worker, outcome, false, 0.0);
}

void
Engine::completePairLocked(int worker, TaskId id, double start,
                           double end)
{
    const Task &task = graph_.task(id);
    // Pair complete: time it, maybe corrupt it, report it.
    const stream::PairId pair = task.pair;
    const TaskId mem_id = graph_.memoryTaskOf(pair);
    core::PairSample sample;
    sample.tm = task_end_[static_cast<std::size_t>(mem_id)] -
                task_start_[static_cast<std::size_t>(mem_id)];
    sample.tc = end - start;
    sample.end_time = end;
    sample.mtl = pair_mem_mtl_[static_cast<std::size_t>(pair)];
    if (options_.fault_plan && options_.fault_plan->enabled()) {
        // Corruption models a broken clock read at measurement
        // time. Keyed by the compute task with attempt 0 so the
        // same pairs corrupt regardless of retry history -- and
        // identically on every backend.
        const fault::TaskFaults faults =
            options_.fault_plan->forTask(id, 0);
        if (faults.corrupt_sample) {
            sample.tm = options_.fault_plan->corruptValue(id, 0);
            sample.tc = options_.fault_plan->corruptValue(id, 1);
        }
    }
    backend_->pairCompleted(graph_.task(mem_id));
    samples_.push_back(sample);
    if (options_.metrics != nullptr && std::isfinite(sample.tm) &&
        std::isfinite(sample.tc)) {
        const std::string suffix =
            ".mtl=" + std::to_string(sample.mtl);
        if (metric_shards_.has_value()) {
            metric_shards_->observe(
                static_cast<std::size_t>(worker),
                "runtime.tm_seconds" + suffix, sample.tm);
            metric_shards_->observe(
                static_cast<std::size_t>(worker),
                "runtime.tc_seconds" + suffix, sample.tc);
        } else {
            options_.metrics->observe("runtime.tm_seconds" + suffix,
                                      sample.tm);
            options_.metrics->observe("runtime.tc_seconds" + suffix,
                                      sample.tc);
        }
    }
    policy_.onPairMeasured(sample);
    refreshMtlCacheLocked();

    if (health_.has_value() && std::isfinite(sample.tm)) {
        // Model-bound window sums: the Sec. IV-C queuing fit
        // predicts T_mb = T_ml + b * T_ql with b memory tasks
        // sharing the path; the MTL the pair ran under is the upper
        // bound on b, so sum_bound is the most generous prediction
        // the fit allows. Corrupted samples inflate sum_tm and trip
        // the detector -- that is the point.
        const obs::HealthConfig &hc = health_->config();
        ++health_window_samples_;
        health_window_sum_tm_ += std::max(sample.tm, 0.0);
        health_window_sum_bound_ +=
            hc.model_tml +
            static_cast<double>(std::max(sample.mtl, 1)) *
                hc.model_tql;
    }

    bool deadline_missed = false;
    if (open_loop_) {
        // Deadline accounting against the *actual* completion:
        // the admission model predicted, this is ground truth.
        const double arrival =
            job_arrival_stamp_[static_cast<std::size_t>(pair)];
        const double response = end - arrival;
        const double queue_wait =
            task_start_[static_cast<std::size_t>(mem_id)] - arrival;
        response_log_.push_back(response);
        if (options_.metrics != nullptr) {
            const Histogram::Options opts{
                .min_value = 1e-6, .growth = 2.0, .buckets = 32};
            if (metric_shards_.has_value()) {
                metric_shards_->observe(
                    static_cast<std::size_t>(worker),
                    "runtime.response_seconds",
                    std::max(response, 0.0), opts);
                metric_shards_->observe(
                    static_cast<std::size_t>(worker),
                    "runtime.queue_wait_seconds",
                    std::max(queue_wait, 0.0), opts);
            } else {
                options_.metrics->observe("runtime.response_seconds",
                                          std::max(response, 0.0),
                                          opts);
                options_.metrics->observe(
                    "runtime.queue_wait_seconds",
                    std::max(queue_wait, 0.0), opts);
            }
        }
        const double slo = job_slo_[static_cast<std::size_t>(pair)];
        if (slo > 0.0 && response > slo) {
            deadline_missed = true;
            ++jobs_deadline_missed_;
            if (MetricsRegistry *metrics = options_.metrics)
                metrics->add("runtime.jobs_deadline_missed", 1);
        }
    }
    closeSpan(pair, end,
              deadline_missed ? obs::SpanOutcome::DeadlineMiss
                              : obs::SpanOutcome::Completed);
}

void
Engine::readyDepthObserve(int worker)
{
    if (options_.metrics == nullptr)
        return;
    const Histogram::Options opts{
        .min_value = 1.0, .growth = 2.0, .buckets = 24};
    const double mem =
        pull_mode_
            ? static_cast<double>(ready_memory_ring_->sizeApprox())
            : static_cast<double>(ready_memory_.size());
    const double cmp =
        pull_mode_
            ? static_cast<double>(ready_compute_ring_->sizeApprox())
            : static_cast<double>(ready_compute_.size());
    if (metric_shards_.has_value()) {
        metric_shards_->observe(static_cast<std::size_t>(worker),
                                "runtime.ready_memory_depth", mem,
                                opts);
        metric_shards_->observe(static_cast<std::size_t>(worker),
                                "runtime.ready_compute_depth", cmp,
                                opts);
    } else {
        options_.metrics->observe("runtime.ready_memory_depth", mem,
                                  opts);
        options_.metrics->observe("runtime.ready_compute_depth", cmp,
                                  opts);
    }
}

void
Engine::unlockSuccessors(TaskId id, double now)
{
    // The final decrement (acq_rel) publishes this task's completion
    // state -- task_start_/task_end_ above all -- to whichever worker
    // later pops the successor off a ring.
    for (TaskId succ : succs_[static_cast<std::size_t>(id)]) {
        if (deps_left_[static_cast<std::size_t>(succ)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            if (graph_.task(succ).kind == TaskKind::Memory) {
                // A dependency-unlocked memory task starts its
                // pair's span: runnable from this completion on.
                openSpan(graph_.task(succ).pair, 0, now);
                enqueueMemoryReady(succ);
            } else {
                enqueueComputeReady(succ);
            }
        }
    }
}

void
Engine::completeLocked(int context, TaskId id,
                       const AttemptOutcome &outcome)
{
    const Task &task = graph_.task(id);
    const double end = outcome.end;
    context_busy_[static_cast<std::size_t>(context)] = false;
    running_[static_cast<std::size_t>(context)].store(
        stream::kInvalidTask, std::memory_order_relaxed);
    recordAttemptEvent(context, id, outcome);

    if (task.kind == TaskKind::Memory)
        --mem_in_flight_;
    else
        completePairLocked(context, id, outcome.start, end);

    readyDepthObserve(context);
    unlockSuccessors(id, end);

    // Phase barrier.
    if (phase_remaining_.fetch_sub(1, std::memory_order_seq_cst) ==
            1 &&
        current_phase_ + 1 < graph_.phaseCount()) {
        tt_assert(ready_memory_.empty() && ready_compute_.empty(),
                  "ready tasks left at a phase barrier");
        activatePhaseLocked(current_phase_ + 1, end);
    }
}

void
Engine::completeMemoryFast(int worker, TaskId id,
                           const AttemptOutcome &outcome)
{
    // Lock-free memory-task completion (pull mode, healthy run).
    // Safe without the scheduler mutex because every touched datum is
    // either worker-owned (running_, trace ring, counter shard),
    // pair-serialized (the open span -- the pair's compute task
    // cannot run until the fetch_sub below), or atomic.
    recordAttemptEvent(worker, id, outcome);
    gate_->release(static_cast<std::size_t>(worker));
    running_[static_cast<std::size_t>(worker)].store(
        stream::kInvalidTask, std::memory_order_relaxed);
    readyDepthObserve(worker);
    unlockSuccessors(id, outcome.end);
    // A memory task is never the last of its phase (its compute
    // successor completes later), so the barrier cannot trip here.
    phase_remaining_.fetch_sub(1, std::memory_order_seq_cst);
    inflight_attempts_.fetch_sub(1, std::memory_order_seq_cst);
    // The freed admission slot may unblock a parked worker.
    wakeWorkers();
    if (run_failed_.load(std::memory_order_seq_cst)) {
        // The run aborted while we completed lock-free; the failing
        // path may have seen our attempt still in flight, so re-run
        // the finish check it skipped.
        std::lock_guard lock(mutex_);
        maybeFinishLocked();
    }
}

void
Engine::completePullSlowLocked(int worker, TaskId id,
                               const AttemptOutcome &outcome)
{
    // Successful attempt that needs the slow path: a compute (pair)
    // completion, or any completion draining into a failed run.
    const Task &task = graph_.task(id);
    const double end = outcome.end;
    running_[static_cast<std::size_t>(worker)].store(
        stream::kInvalidTask, std::memory_order_relaxed);
    recordAttemptEvent(worker, id, outcome);

    if (task.kind == TaskKind::Memory)
        gate_->release(static_cast<std::size_t>(worker));
    else
        completePairLocked(worker, id, outcome.start, end);

    readyDepthObserve(worker);
    unlockSuccessors(id, end);

    if (phase_remaining_.fetch_sub(1, std::memory_order_seq_cst) ==
            1 &&
        current_phase_ + 1 < graph_.phaseCount()) {
        tt_assert(ready_memory_ring_->emptyApprox() &&
                      ready_compute_ring_->emptyApprox(),
                  "ready tasks left at a phase barrier");
        activatePhaseLocked(current_phase_ + 1, end);
    }
    inflight_attempts_.fetch_sub(1, std::memory_order_seq_cst);
}

void
Engine::handlePullFailureLocked(int worker, TaskId id,
                                const AttemptOutcome &outcome)
{
    const auto w = static_cast<std::size_t>(worker);
    const int attempt = attempts_[static_cast<std::size_t>(id)];
    if (!run_failed_.load(std::memory_order_relaxed) &&
        attempt < options_.max_task_retries) {
        const double backoff =
            std::min(options_.retry_backoff_seconds *
                         std::ldexp(1.0, attempt),
                     50e-3);
        spanAttempt(id, worker, outcome, true, backoff);
        ++attempts_[static_cast<std::size_t>(id)];
        task_retries_.fetch_add(1, std::memory_order_relaxed);
        if (MetricsRegistry *metrics = options_.metrics)
            metrics->add("runtime.task_retries", 1);
        retry_log_.push_back(RetryRecord{id, attempt});
        // The worker stays reserved through the backoff (its gate
        // slot included, for memory tasks): the retry cannot be
        // starved out, and single-thread runs keep the push-mode
        // schedule exactly.
        AttemptSpec spec;
        spec.task = id;
        spec.attempt = attempts_[static_cast<std::size_t>(id)];
        spec.rerun_memory_first =
            graph_.task(id).kind == TaskKind::Compute;
        const fault::FaultPlan *plan = options_.fault_plan;
        if (plan != nullptr && plan->enabled()) {
            spec.faults = plan->forTask(id, spec.attempt);
            spec.stall_seconds = plan->config().stall_seconds;
        }
        retry_spec_[w] = spec;
        auto &pending = pending_retry_[w];
        pending.active.store(true, std::memory_order_relaxed);
        pending.token = backend_->after(
            backoff, [this, worker] { onRetryTimerPull(worker); });
        return;
    }

    spanAttempt(id, worker, outcome, true, 0.0);
    ++task_failures_;
    if (MetricsRegistry *metrics = options_.metrics)
        metrics->add("runtime.task_failures", 1);
    running_[w].store(stream::kInvalidTask,
                      std::memory_order_relaxed);
    if (graph_.task(id).kind == TaskKind::Memory)
        gate_->release(w);
    inflight_attempts_.fetch_sub(1, std::memory_order_seq_cst);
    markRunFailedLocked("task " + std::to_string(id) +
                        " failed after " +
                        std::to_string(options_.max_task_retries) +
                        " retries: " + outcome.error);
    closeSpan(graph_.task(id).pair, outcome.end,
              obs::SpanOutcome::Failed);
    maybeFinishLocked();
}

void
Engine::markRunFailedLocked(const std::string &reason)
{
    if (run_failed_.load(std::memory_order_relaxed))
        return;
    failure_reason_ = reason;
    run_failed_.store(true, std::memory_order_seq_cst);
    tt_warn("aborting run: ", failure_reason_);
    abandonPendingRetriesLocked();
    if (pull_mode_)
        wakeWorkers(); // parked workers re-evaluate into drain mode
}

void
Engine::failTaskLocked(int context, TaskId id, const std::string &why)
{
    ++task_failures_;
    if (MetricsRegistry *metrics = options_.metrics)
        metrics->add("runtime.task_failures", 1);
    context_busy_[static_cast<std::size_t>(context)] = false;
    running_[static_cast<std::size_t>(context)].store(
        stream::kInvalidTask, std::memory_order_relaxed);
    if (graph_.task(id).kind == TaskKind::Memory)
        --mem_in_flight_;
    markRunFailedLocked("task " + std::to_string(id) +
                        " failed after " +
                        std::to_string(options_.max_task_retries) +
                        " retries: " + why);
}

void
Engine::abandonContextLocked(int context, TaskId id)
{
    // The task never re-ran, so it is abandoned rather than failed:
    // only the task that exhausted its retries counts as a failure.
    context_busy_[static_cast<std::size_t>(context)] = false;
    running_[static_cast<std::size_t>(context)].store(
        stream::kInvalidTask, std::memory_order_relaxed);
    if (graph_.task(id).kind == TaskKind::Memory)
        --mem_in_flight_;
}

void
Engine::abandonWorkerAttemptLocked(int worker)
{
    const auto w = static_cast<std::size_t>(worker);
    const TaskId id = running_[w].load(std::memory_order_relaxed);
    if (id == stream::kInvalidTask)
        return;
    running_[w].store(stream::kInvalidTask,
                      std::memory_order_relaxed);
    if (graph_.task(id).kind == TaskKind::Memory)
        gate_->release(w);
    inflight_attempts_.fetch_sub(1, std::memory_order_seq_cst);
}

void
Engine::abandonPendingRetriesLocked()
{
    const int n = static_cast<int>(pending_retry_.size());
    for (int c = 0; c < n; ++c) {
        auto &pending = pending_retry_[static_cast<std::size_t>(c)];
        if (!pending.active.load(std::memory_order_relaxed))
            continue;
        pending.active.store(false, std::memory_order_relaxed);
        backend_->cancel(pending.token);
        pending.token = 0;
        if (pull_mode_)
            abandonWorkerAttemptLocked(c);
        else
            abandonContextLocked(
                c, running_[static_cast<std::size_t>(c)].load(
                       std::memory_order_relaxed));
    }
}

void
Engine::maybeFinishLocked()
{
    if (finished_)
        return;
    const int done = tasks_done_.load(std::memory_order_seq_cst);
    // Open-loop: drained once every plan job was delivered and every
    // task either completed or belongs to a shed pair.
    const bool drained =
        open_loop_ ? next_job_ >= options_.arrival_plan->size() &&
                         done + shed_tasks_ == graph_.taskCount()
                   : done == graph_.taskCount();
    if (!drained) {
        if (!run_failed_.load(std::memory_order_relaxed))
            return;
        if (pull_mode_) {
            // inflight_attempts_ covers running bodies *and* retry
            // reservations, so zero means truly idle.
            if (inflight_attempts_.load(std::memory_order_seq_cst) !=
                0)
                return;
        } else {
            for (const bool busy : context_busy_)
                if (busy)
                    return; // let in-flight attempts deliver first
        }
    }
    finished_ = true;
    drain_seconds_ = backend_->now();
    run_complete_.store(true, std::memory_order_seq_cst);
    if (pull_mode_)
        wakeWorkers(); // parked workers observe run_complete_, exit
    if (watchdog_token_ != 0) {
        backend_->cancel(watchdog_token_);
        watchdog_token_ = 0;
    }
    if (const auto token = timeseries_token_.exchange(
            0, std::memory_order_acq_rel);
        token != 0) {
        backend_->cancel(token);
    }
    if (arrival_token_ != 0) {
        backend_->cancel(arrival_token_);
        arrival_token_ = 0;
    }
    if (const auto token =
            live_token_.exchange(0, std::memory_order_acq_rel);
        token != 0) {
        backend_->cancel(token);
    }
    if (const auto token =
            health_token_.exchange(0, std::memory_order_acq_rel);
        token != 0) {
        backend_->cancel(token);
    }
    // Final shard fold so the drain-time row/snapshot (and any late
    // scrape) see fully caught-up registry values.
    if (metric_shards_.has_value())
        metric_shards_->fold();
    // Flush partial health windows before the drain-time row and
    // snapshot so both carry the final alert state.
    healthFinishLocked();
    if (options_.timeseries_out != nullptr) {
        // Final row so even a sub-interval run leaves a snapshot
        // behind; stamped at drain time so it cannot extend the
        // reported makespan.
        emitTimeseriesRowLocked();
        options_.timeseries_out->flush();
    }
    if (options_.live_sink != nullptr) {
        // Drain-time snapshot so even a sub-interval run leaves a
        // readable OpenMetrics file behind.
        liveSnapshotLocked();
    }
    backend_->runDrained();
}

void
Engine::onWatchdogDeadline()
{
    if (run_complete_.load(std::memory_order_relaxed))
        return; // drained while the deadline callback was in flight
    if (MetricsRegistry *metrics = options_.metrics)
        metrics->add("runtime.watchdog_fired", 1);

    if (backend_->watchdogTerminatesProcess()) {
        std::fprintf(
            stderr,
            "tt: watchdog: run exceeded %.3f s deadline; dumping "
            "diagnostics and exiting with code %d\n",
            options_.watchdog_seconds, options_.watchdog_exit_code);
        runCrashDumpHooks(); // includes this engine's crashDump()
        std::fflush(nullptr);
        // Workers may be wedged holding locks; a normal exit would
        // hang in their joins/destructors, so leave without unwinding.
        backend_->terminateProcess(options_.watchdog_exit_code);
        return;
    }

    // Backends without real threads (sim, mocks) cannot wedge: fail
    // the run in-band through the same diagnostics path and let any
    // in-flight attempts drain.
    std::fprintf(stderr,
                 "tt: watchdog: run exceeded %.3f s deadline; failing "
                 "the run\n",
                 options_.watchdog_seconds);
    std::lock_guard lock(mutex_);
    if (finished_)
        return;
    watchdog_fired_ = true;
    watchdog_token_ = 0;
    char reason[96];
    std::snprintf(reason, sizeof reason,
                  "watchdog: run exceeded %.3f s deadline",
                  options_.watchdog_seconds);
    markRunFailedLocked(reason);
    maybeFinishLocked();
}

void
Engine::onTimeseriesTick()
{
    if (run_complete_.load(std::memory_order_acquire))
        return; // drained while this callback was in flight
    {
        // Never stall the schedulers' slow path for a sample: a busy
        // mutex skips the row (counted, and warned about by ttsim)
        // instead of convoying workers behind the sampler.
        std::unique_lock lock(mutex_, std::try_to_lock);
        if (lock.owns_lock()) {
            if (finished_)
                return;
            if (metric_shards_.has_value())
                metric_shards_->fold(); // window-boundary fold
            emitTimeseriesRowLocked();
        } else {
            timeseries_skipped_.fetch_add(1,
                                          std::memory_order_relaxed);
        }
    }
    // Re-armed outside the mutex; the race against the cancel at
    // finish is benign (a stray tick bails on run_complete_).
    timeseries_token_.store(
        backend_->after(
            std::max(options_.timeseries_interval_seconds, 1e-6),
            [this] { onTimeseriesTick(); }),
        std::memory_order_release);
}

void
Engine::onLiveTick()
{
    if (run_complete_.load(std::memory_order_acquire))
        return;
    {
        std::lock_guard lock(mutex_);
        if (finished_)
            return;
        if (metric_shards_.has_value())
            metric_shards_->fold(); // snapshot sees current values
        liveSnapshotLocked();
    }
    live_token_.store(
        backend_->after(std::max(options_.live_interval_seconds, 1e-6),
                        [this] { onLiveTick(); }),
        std::memory_order_release);
}

void
Engine::liveSnapshotLocked()
{
    // The sink measures its own rendering cost and charges it to
    // obs.overhead.live_export_ns.
    options_.live_sink->snapshot(finished_ ? drain_seconds_
                                           : backend_->now());
}

void
Engine::emitTimeseriesRowLocked()
{
    const std::uint64_t t0 = wallNanos();
    obs::TimeseriesSample row;
    row.time = finished_ ? drain_seconds_ : backend_->now();
    row.mtl = policy_.currentMtl();
    row.mem_in_flight = memInFlightNow();
    row.tasks_done = tasks_done_.load(std::memory_order_relaxed);
    row.pairs_done = static_cast<long>(samples_.size());
    row.ready_memory = pull_mode_ ? ready_memory_ring_->sizeApprox()
                                  : ready_memory_.size();
    row.ready_compute = pull_mode_ ? ready_compute_ring_->sizeApprox()
                                   : ready_compute_.size();
    row.selections = policy_.stats().selections;
    row.degraded = policy_.degraded();
    if (open_loop_) {
        // Jobs in system (admitted, not yet completed): the N of
        // Little's law, which is what "queue depth" means here.
        row.queue_depth = static_cast<long>(
            jobs_admitted_ - static_cast<long>(samples_.size()));
        row.backpressure = static_cast<int>(backpressure_);
    }
    obs::writeTimeseriesRow(row, *options_.timeseries_out);
    obs_sampler_ns_ += wallNanos() - t0;
}

void
Engine::healthJobVerdictLocked(const load::JobSpec &job,
                               const JobRecord &record)
{
    if (!health_.has_value())
        return;
    const std::uint64_t t0 = wallNanos();
    ++health_window_offered_;
    if (record.decision == load::AdmissionDecision::Shed) {
        ++health_window_shed_;
    } else if (job.slo_seconds > 0.0 &&
               record.predicted_response > job.slo_seconds) {
        // Admitted but the admission model already expects it late:
        // a deterministic stand-in for the (wall-clock-dependent)
        // actual deadline outcome, so burn windows agree across
        // backends.
        ++health_window_predicted_late_;
    }
    health_window_backlog_ = record.backlog;
    if (health_window_offered_ >= health_->config().window_jobs)
        healthCloseJobWindowLocked();
    obs_health_ns_ += wallNanos() - t0;
}

void
Engine::healthCloseJobWindowLocked()
{
    obs::JobWindowSample sample;
    sample.window = health_job_window_++;
    sample.time = finished_ ? drain_seconds_ : backend_->now();
    sample.offered = health_window_offered_;
    sample.shed = health_window_shed_;
    sample.predicted_late = health_window_predicted_late_;
    sample.backlog = health_window_backlog_;
    health_window_offered_ = 0;
    health_window_shed_ = 0;
    health_window_predicted_late_ = 0;
    health_->onJobWindow(sample);
    publishHealthMetricsLocked();
}

void
Engine::onHealthTick()
{
    if (run_complete_.load(std::memory_order_acquire))
        return; // drained while this callback was in flight
    {
        std::lock_guard lock(mutex_);
        if (finished_)
            return;
        healthTickWindowLocked();
    }
    // Re-armed outside the mutex, same benign race as the sampler.
    health_token_.store(
        backend_->after(
            std::max(health_->config().tick_seconds, 1e-6),
            [this] { onHealthTick(); }),
        std::memory_order_release);
}

void
Engine::healthTickWindowLocked()
{
    const std::uint64_t t0 = wallNanos();
    obs::TickWindowSample sample;
    sample.window = health_tick_window_++;
    sample.time = finished_ ? drain_seconds_ : backend_->now();

    // Hot-path counter deltas since the previous tick window. Push
    // mode has no gate (the bound check lives under the mutex), so
    // those detectors stay quiet on the sim backend by construction.
    long gate_failures = 0;
    long gate_folds = 0;
    if (gate_.has_value()) {
        gate_failures = gate_->admitFailures();
        gate_folds = gate_->folds();
    }
    sample.gate_failures = gate_failures - health_prev_gate_failures_;
    sample.gate_folds = gate_folds - health_prev_gate_folds_;
    health_prev_gate_failures_ = gate_failures;
    health_prev_gate_folds_ = gate_folds;

    const std::uint64_t trace_dropped = tracer_->dropped();
    const std::uint64_t span_dropped = span_buffer_->dropped();
    const std::uint64_t records =
        tracer_->recorded() + span_buffer_->recorded();
    sample.trace_dropped = static_cast<long>(
        trace_dropped - health_prev_trace_dropped_);
    sample.span_dropped =
        static_cast<long>(span_dropped - health_prev_span_dropped_);
    sample.records =
        static_cast<long>(records - health_prev_records_);
    health_prev_trace_dropped_ = trace_dropped;
    health_prev_span_dropped_ = span_dropped;
    health_prev_records_ = records;

    const std::uint64_t ebr_advances = span_buffer_->epochAdvances();
    sample.ebr_pending = span_buffer_->epochPending();
    sample.ebr_advances = ebr_advances - health_prev_ebr_advances_;
    health_prev_ebr_advances_ = ebr_advances;

    sample.pair_samples = health_window_samples_;
    sample.sum_tm = health_window_sum_tm_;
    sample.sum_bound = health_window_sum_bound_;
    health_window_samples_ = 0;
    health_window_sum_tm_ = 0.0;
    health_window_sum_bound_ = 0.0;

    health_->onTickWindow(sample);
    publishHealthMetricsLocked();
    obs_health_ns_ += wallNanos() - t0;
}

void
Engine::healthFinishLocked()
{
    if (!health_.has_value())
        return;
    // Flush the partial job window (both backends see the same
    // residue: the plan length is the plan length) and one last tick
    // window, so alerts active at drain are visible in the final
    // snapshot and the edge stream is complete.
    if (health_window_offered_ > 0)
        healthCloseJobWindowLocked();
    healthTickWindowLocked();
}

void
Engine::publishHealthMetricsLocked()
{
    MetricsRegistry *metrics = options_.metrics;
    if (metrics == nullptr || !health_.has_value())
        return;
    const auto states = health_->ruleStates();
    for (std::size_t i = 0; i < states.size(); ++i) {
        const auto &state = states[i];
        const std::string rule(state.rule);
        // Gauge value doubles as the severity encoding (0 inactive,
        // 1 warning, 2 critical) so ttstat can gate on "critical
        // active" without parsing rule metadata.
        metrics->set("obs.alerts_active." + rule,
                     state.active
                         ? static_cast<double>(state.severity)
                         : 0.0);
        metrics->add("obs.alerts_fired." + rule,
                     static_cast<std::int64_t>(
                         state.fired - health_pub_fired_[i]));
        metrics->add("obs.alerts_cleared." + rule,
                     static_cast<std::int64_t>(
                         state.cleared - health_pub_cleared_[i]));
        health_pub_fired_[i] = state.fired;
        health_pub_cleared_[i] = state.cleared;
    }
    metrics->add("obs.alerts_dropped",
                 static_cast<std::int64_t>(health_->alertsDropped() -
                                           health_pub_dropped_));
    health_pub_dropped_ = health_->alertsDropped();
}

int
Engine::memInFlightNow() const
{
    return pull_mode_ ? static_cast<int>(gate_->current())
                      : mem_in_flight_;
}

void
Engine::refreshMtlCacheLocked()
{
    if (!pull_mode_)
        return;
    // Policies are not thread-safe, so currentMtl() is only read
    // under mutex_ and mirrored here for the lock-free admission
    // bound. The mirror is exact: the policy only changes state
    // under this same mutex.
    const int mtl = policy_.currentMtl();
    const int prev = mtl_cache_.exchange(mtl, std::memory_order_seq_cst);
    if (mtl > prev)
        wakeWorkers(); // new headroom may unblock admission waiters
}

void
Engine::wakeWorkers()
{
    // parked_ is a fast-path hint: while every worker is busy this
    // is one relaxed-ish load and no lock at all.
    if (parked_.load(std::memory_order_seq_cst) == 0)
        return;
    {
        // Bump the generation under the lot mutex so a worker that
        // registered but has not yet slept cannot miss the wake.
        std::lock_guard lock(park_mutex_);
        ++park_gen_;
        ++wake_notifies_; // telemetry; already on the slow path
    }
    park_cv_.notify_all();
}

bool
Engine::workerShouldSleep(int worker) const
{
    const auto w = static_cast<std::size_t>(worker);
    if (run_complete_.load(std::memory_order_acquire))
        return false; // exit instead
    if (retry_ready_[w].load(std::memory_order_acquire))
        return false; // our retry is due
    if (pending_retry_[w].active.load(std::memory_order_acquire))
        return true; // reserved: only our retry timer can free us
    if (run_failed_.load(std::memory_order_acquire))
        return true; // drain mode: nothing to dispatch, wait for end
    if (!ready_compute_ring_->emptyApprox())
        return false;
    if (!ready_memory_ring_->emptyApprox() &&
        gate_->current() < mtl_cache_.load(std::memory_order_seq_cst))
        return false;
    return true;
}

void
Engine::parkWorker(int worker)
{
    parked_.fetch_add(1, std::memory_order_seq_cst);
    if (!workerShouldSleep(worker)) {
        // Work appeared between our last probe and registering.
        parked_.fetch_sub(1, std::memory_order_seq_cst);
        return;
    }
    // Count the park on this worker's own metric shard: the worker
    // is about to sleep anyway, so the map lookup is free contention-
    // wise and the hot dispatch path stays untouched.
    if (metric_shards_.has_value())
        metric_shards_->add(static_cast<std::size_t>(worker),
                            "runtime.worker_parks", 1);
    {
        std::unique_lock lock(park_mutex_);
        const std::uint64_t gen = park_gen_;
        // The bounded wait is insurance, not the wake mechanism: the
        // parked_ hint can race a producer that published work before
        // seeing our registration; 2 ms bounds that tail.
        park_cv_.wait_for(lock, std::chrono::milliseconds(2), [&] {
            return park_gen_ != gen || !workerShouldSleep(worker);
        });
    }
    parked_.fetch_sub(1, std::memory_order_seq_cst);
}

void
Engine::prepareDispatch(int worker, TaskId id, int mtl,
                        AttemptSpec &spec)
{
    const Task &task = graph_.task(id);
    const auto w = static_cast<std::size_t>(worker);
    running_[w].store(id, std::memory_order_relaxed);
    inflight_attempts_.fetch_add(1, std::memory_order_seq_cst);
    // Fresh dispatches are always attempt 0: failed tasks never
    // requeue (the retry stays reserved on its worker), so these
    // slots are quiescent for everyone else.
    task_mtl_[static_cast<std::size_t>(id)] = mtl;
    if (task.kind == TaskKind::Memory)
        pair_mem_mtl_[static_cast<std::size_t>(task.pair)] = mtl;
    spec = AttemptSpec{};
    spec.task = id;
    spec.attempt = 0;
    const fault::FaultPlan *plan = options_.fault_plan;
    if (plan != nullptr && plan->enabled()) {
        spec.faults = plan->forTask(id, 0);
        spec.stall_seconds = plan->config().stall_seconds;
    }
}

bool
Engine::nextAttempt(int worker, AttemptSpec &spec)
{
    const auto w = static_cast<std::size_t>(worker);
    for (;;) {
        if (run_complete_.load(std::memory_order_acquire))
            return false;
        if (retry_ready_[w].exchange(false,
                                     std::memory_order_acq_rel)) {
            // Our granted retry's backoff elapsed: re-run the same
            // task on this worker (the context stayed reserved, so
            // retries are never starved and single-thread schedules
            // match push mode exactly).
            if (run_failed_.load(std::memory_order_acquire)) {
                std::lock_guard lock(mutex_);
                abandonWorkerAttemptLocked(worker);
                maybeFinishLocked();
                continue;
            }
            spec = retry_spec_[w];
            return true;
        }
        if (pending_retry_[w].active.load(
                std::memory_order_acquire)) {
            // Reserved through a backoff: park, never steal other
            // work (that would hand the retried task to the wrong
            // context and break the reservation invariant).
            parkWorker(worker);
            continue;
        }
        if (!run_failed_.load(std::memory_order_acquire)) {
            TaskId id = stream::kInvalidTask;
            // Compute first, exactly like push-mode tryScheduleLocked.
            if (ready_compute_ring_->tryPop(id)) {
                prepareDispatch(worker, id,
                                mtl_cache_.load(
                                    std::memory_order_seq_cst),
                                spec);
                return true;
            }
            const int bound =
                mtl_cache_.load(std::memory_order_seq_cst);
            if (!ready_memory_ring_->emptyApprox() &&
                gate_->tryAcquire(w, bound)) {
                if (ready_memory_ring_->tryPop(id)) {
                    prepareDispatch(worker, id, bound, spec);
                    return true;
                }
                // Another worker drained the ring between the probe
                // and the pop; give the slot back.
                gate_->release(w);
            }
        }
        parkWorker(worker);
    }
}

void
Engine::crashDump()
{
    // Runs on the watchdog/terminate path with workers possibly
    // wedged inside the scheduler lock: never block, report whatever
    // is reachable. The counter reads race with live workers, which
    // is acceptable for a diagnostic of a dying process.
    std::unique_lock lock(mutex_, std::try_to_lock);
    if (lock.owns_lock())
        std::fprintf(stderr,
                     "tt: runtime progress: %d/%d tasks done, "
                     "%d memory tasks in flight\n",
                     tasks_done_.load(std::memory_order_relaxed),
                     graph_.taskCount(), memInFlightNow());
    else
        std::fprintf(stderr,
                     "tt: runtime progress: scheduler lock held "
                     "(worker wedged mid-dispatch), %d tasks total\n",
                     graph_.taskCount());
    if (tracer_.has_value())
        std::fprintf(
            stderr,
            "tt: runtime trace: %llu events recorded, %llu dropped; "
            "%ld task retries\n",
            static_cast<unsigned long long>(tracer_->recorded()),
            static_cast<unsigned long long>(tracer_->dropped()),
            task_retries_.load(std::memory_order_relaxed));
}

RunResult
Engine::run(ExecutionBackend &backend)
{
    tt_assert(!started_, "Engine::run() is single-shot");
    started_ = true;

    if (graph_.empty()) {
        RunResult result;
        result.mtl_trace = policy_.mtlTrace();
        return result;
    }

    backend_ = &backend;
    const int contexts = backend.contexts();
    tt_assert(contexts >= 1, "need at least one execution context");
    context_busy_.assign(static_cast<std::size_t>(contexts), false);
    running_ =
        std::vector<std::atomic<TaskId>>(static_cast<std::size_t>(contexts));
    for (auto &slot : running_)
        slot.store(stream::kInvalidTask, std::memory_order_relaxed);
    pending_retry_ =
        std::vector<PendingRetry>(static_cast<std::size_t>(contexts));
    pull_mode_ = backend.pullDispatch();
    if (pull_mode_) {
        // Rings sized to the whole task count: pushes cannot fail.
        const auto ring_cap = static_cast<std::size_t>(
            std::max(graph_.taskCount(), 2));
        ready_memory_ring_.emplace(ring_cap);
        ready_compute_ring_.emplace(ring_cap);
        gate_.emplace(static_cast<std::size_t>(contexts));
        retry_ready_ = std::vector<std::atomic<bool>>(
            static_cast<std::size_t>(contexts));
        retry_spec_.assign(static_cast<std::size_t>(contexts),
                           AttemptSpec{});
        worker_counters_.assign(static_cast<std::size_t>(contexts),
                                WorkerCounters{});
        if (options_.metrics != nullptr)
            metric_shards_.emplace(
                *options_.metrics,
                static_cast<std::size_t>(contexts));
    }
    tracer_.emplace(contexts, ringCapacity(options_, graph_.taskCount()));
    const auto n_pairs = static_cast<std::size_t>(graph_.pairCount());
    span_buffer_.emplace(std::max<std::size_t>(
        1, std::min(options_.span_capacity, n_pairs)));
    open_span_.assign(n_pairs, obs::JobSpan{});
    span_open_ = std::vector<std::atomic<bool>>(n_pairs);
    for (auto &flag : span_open_)
        flag.store(false, std::memory_order_relaxed);

    backend.beginRun(*this);

    // Surface degraded counter providers up front: a crash dump or
    // watchdog report should already carry the gauge.
    if (options_.counters != nullptr && options_.metrics != nullptr)
        options_.metrics->set(
            "runtime.perf_unavailable",
            options_.counters->available() ? 0.0 : 1.0);

    // While the run is live, abnormal termination (tt_assert, the
    // watchdog) can flush this engine's diagnostics.
    const int hook_id = registerCrashDumpHook([this] { crashDump(); });

    {
        std::lock_guard lock(mutex_);
        refreshMtlCacheLocked(); // admission bound before workers run
        if (options_.health.enabled) {
            // Constructed before the first arrivals so t=0 verdicts
            // land in job window 0. The model-bound fit defaults to
            // the admission service estimates when none was given.
            obs::HealthConfig hc = options_.health;
            if (hc.model_tml <= 0.0 && open_loop_) {
                hc.model_tml = options_.admission.service_tml;
                hc.model_tql = options_.admission.service_tql;
            }
            health_.emplace(hc);
            health_pub_fired_.assign(health_->ruleStates().size(),
                                     0);
            health_pub_cleared_.assign(health_->ruleStates().size(),
                                       0);
            publishHealthMetricsLocked(); // materialize the schema
            health_token_ = backend.after(
                std::max(hc.tick_seconds, 1e-6),
                [this] { onHealthTick(); });
        }
        if (open_loop_) {
            admission_.emplace(options_.admission, contexts);
            backpressure_ = admission_->state();
            // Arrivals replace phase activation: tasks become ready
            // as their jobs are admitted, never all at once.
            current_phase_ = 0;
            phase_remaining_ = graph_.taskCount();
            processArrivalsLocked(0.0);
            scheduleNextArrivalLocked(0.0);
        } else {
            activatePhaseLocked(0, 0.0);
        }
        if (options_.timeseries_out != nullptr) {
            emitTimeseriesRowLocked();
            timeseries_token_ = backend.after(
                std::max(options_.timeseries_interval_seconds, 1e-6),
                [this] { onTimeseriesTick(); });
        }
        if (options_.live_sink != nullptr) {
            liveSnapshotLocked();
            live_token_ = backend.after(
                std::max(options_.live_interval_seconds, 1e-6),
                [this] { onLiveTick(); });
        }
        if (options_.watchdog_seconds > 0.0)
            watchdog_token_ =
                backend.after(options_.watchdog_seconds,
                              [this] { onWatchdogDeadline(); });
        tryScheduleLocked();
        if (open_loop_)
            maybeFinishLocked(); // plan may shed everything at t=0
    }

    backend.drive(*this);
    unregisterCrashDumpHook(hook_id);
    return finishResult();
}

RunResult
Engine::finishResult()
{
    std::lock_guard lock(mutex_);
    // The workers joined before drive() returned, so every shard --
    // metric, hw-counter -- is quiescent; fold the stragglers.
    if (metric_shards_.has_value())
        metric_shards_->fold();
    for (const WorkerCounters &wc : worker_counters_) {
        if (!wc.saw)
            continue;
        saw_counters_ = true;
        counter_totals_ += wc.totals;
    }
    const int done = tasks_done_.load(std::memory_order_seq_cst);
    RunResult result;
    result.failed = run_failed_.load(std::memory_order_relaxed);
    result.watchdog_fired = watchdog_fired_;
    result.failure_reason = failure_reason_;
    result.task_retries =
        task_retries_.load(std::memory_order_relaxed);
    result.task_failures = task_failures_;
    result.retries = retry_log_;
    tt_assert(result.failed ||
                  done + shed_tasks_ == graph_.taskCount(),
              "run drained with ", done, " of ",
              graph_.taskCount(), " tasks done and ", shed_tasks_,
              " shed (deadlock in graph or scheduler)");

    result.seconds =
        drain_seconds_ >= 0.0 ? drain_seconds_ : backend_->now();
    result.samples = samples_;
    result.policy_stats = policy_.stats();
    result.mtl_trace = policy_.mtlTrace();
    result.decisions = policy_.decisions();
    // Pull mode tracks the peak exactly in the gate (monotonic
    // CAS-max over the folded shard sum at every successful admit).
    result.peak_mem_in_flight =
        pull_mode_ ? static_cast<int>(gate_->peak())
                   : peak_mem_in_flight_;
    result.trace = tracer_->merged();
    result.trace_dropped = tracer_->dropped();
    if (span_buffer_.has_value()) {
        result.spans = span_buffer_->spans();
        result.spans_dropped = span_buffer_->dropped();
    }
    result.timeseries_skipped =
        timeseries_skipped_.load(std::memory_order_relaxed);
    result.pin_failures = backend_->pinFailures();

    // Corrupted samples (injected or from a glitched clock) stay in
    // result.samples for inspection but are excluded from the
    // averages -- same screen the policies apply -- so one NaN or
    // absurd outlier cannot blank the whole summary.
    core::SampleGuard summary_guard;
    double tm_sum = 0.0;
    double tc_sum = 0.0;
    long clean = 0;
    for (const auto &sample : samples_) {
        if (!summary_guard.accept(sample))
            continue;
        tm_sum += sample.tm;
        tc_sum += sample.tc;
        ++clean;
    }
    if (clean > 0) {
        result.avg_tm = tm_sum / static_cast<double>(clean);
        result.avg_tc = tc_sum / static_cast<double>(clean);
    }
    if (!samples_.empty()) {
        // Probe overhead counts only samples a selection accepted;
        // stale pairs (measured under a pre-probe MTL) are tracked
        // separately in policy_stats.stale_pairs.
        result.monitor_overhead =
            static_cast<double>(result.policy_stats.probe_pairs) /
            static_cast<double>(samples_.size());
    }

    // Per-phase aggregates.
    for (const stream::Phase &phase : graph_.phases()) {
        PhaseResult pr;
        pr.name = phase.name;
        double tm = 0.0;
        double tc = 0.0;
        double start = std::numeric_limits<double>::infinity();
        double end = 0.0;
        for (int p = phase.first_pair;
             p < phase.first_pair + phase.pair_count; ++p) {
            const TaskId mem_id = graph_.memoryTaskOf(p);
            const TaskId cmp_id = graph_.computeTaskOf(p);
            tm += task_end_[static_cast<std::size_t>(mem_id)] -
                  task_start_[static_cast<std::size_t>(mem_id)];
            tc += task_end_[static_cast<std::size_t>(cmp_id)] -
                  task_start_[static_cast<std::size_t>(cmp_id)];
            start = std::min(
                start, task_start_[static_cast<std::size_t>(mem_id)]);
            end = std::max(end,
                           task_end_[static_cast<std::size_t>(cmp_id)]);
        }
        if (phase.pair_count > 0) {
            pr.tm_mean = tm / phase.pair_count;
            pr.tc_mean = tc / phase.pair_count;
            pr.start = start;
            pr.end = end;
        }
        result.phases.push_back(std::move(pr));
    }

    result.has_counters = saw_counters_;
    result.counters = counter_totals_;

    if (health_.has_value()) {
        result.health_enabled = true;
        result.alerts = health_->alerts();
        result.alerts_dropped = health_->alertsDropped();
        result.critical_alert_active = health_->criticalActive();
    }

    if (open_loop_) {
        result.jobs_offered =
            static_cast<long>(options_.arrival_plan->size());
        result.jobs_admitted = jobs_admitted_;
        result.jobs_delayed = jobs_delayed_;
        result.jobs_shed = jobs_shed_;
        result.jobs_deadline_missed = jobs_deadline_missed_;
        result.jobs = job_log_;
        result.response_seconds = response_log_;
        if (result.jobs_offered > 0) {
            // Shed jobs count as missed: attainment is over offered
            // load, not over what the system deigned to admit.
            result.slo_attainment =
                static_cast<double>(jobs_admitted_ -
                                    jobs_deadline_missed_) /
                static_cast<double>(result.jobs_offered);
        }
    }

    if (MetricsRegistry *metrics = options_.metrics) {
        metrics->add("runtime.tasks_done", done);
        metrics->add("runtime.pin_failed", result.pin_failures);
        metrics->add("trace.events_dropped",
                     static_cast<std::int64_t>(result.trace_dropped));
        metrics->add("obs.spans_dropped",
                     static_cast<std::int64_t>(result.spans_dropped));
        // Rows the sampler skipped because the scheduler mutex was
        // busy; the zero-delta add materializes the name on every
        // backend so schema diffs stay clean.
        metrics->add("obs.timeseries_skipped",
                     timeseries_skipped_.load(
                         std::memory_order_relaxed));
        // Self-observability: what tracing/sampling cost in *wall*
        // nanoseconds. The zero-delta adds materialize the full
        // obs.overhead.* schema on every backend; the backends then
        // add their counter-read share in finalize(), and the live
        // sinks charge live_export_ns as they serve.
        metrics->add("obs.overhead.trace_record_ns",
                     static_cast<std::int64_t>(
                         obs_trace_record_ns_.load(
                             std::memory_order_relaxed)));
        metrics->add("obs.overhead.sampler_ns",
                     static_cast<std::int64_t>(obs_sampler_ns_));
        metrics->add("obs.overhead.counter_read_ns", 0);
        metrics->add("obs.overhead.live_export_ns", 0);
        metrics->add("obs.overhead.health_ns",
                     static_cast<std::int64_t>(obs_health_ns_));
        // Hot-path substrate telemetry. Push mode has no rings, gate
        // or parking lot; the zero-delta adds / zero sets still
        // materialize the names so host and sim expose the identical
        // schema.
        long gate_failures = 0;
        long gate_folds = 0;
        double ring_peak_memory = 0.0;
        double ring_peak_compute = 0.0;
        if (pull_mode_) {
            gate_failures = gate_->admitFailures();
            gate_folds = gate_->folds();
            ring_peak_memory = static_cast<double>(
                ready_memory_ring_->peakApprox());
            ring_peak_compute = static_cast<double>(
                ready_compute_ring_->peakApprox());
        }
        metrics->add("runtime.gate_admit_failures", gate_failures);
        metrics->add("runtime.gate_folds", gate_folds);
        metrics->set("runtime.ring_peak_memory", ring_peak_memory);
        metrics->set("runtime.ring_peak_compute", ring_peak_compute);
        metrics->add("runtime.worker_parks", 0); // shards added real
        metrics->add("runtime.worker_wakes",
                     static_cast<std::int64_t>(wake_notifies_));
        metrics->add("obs.ebr_epoch_advances",
                     static_cast<std::int64_t>(
                         span_buffer_->epochAdvances()));
        metrics->add("obs.ebr_advance_stalls",
                     static_cast<std::int64_t>(
                         span_buffer_->epochStalls()));
        metrics->set("obs.ebr_pending",
                     static_cast<double>(
                         span_buffer_->epochPending()));
        publishHealthMetricsLocked(); // final alert state (if any)
        metrics->setMax("runtime.peak_mem_in_flight",
                        result.peak_mem_in_flight);
        metrics->set("runtime.makespan_seconds", result.seconds);
        metrics->set("runtime.monitor_overhead",
                     result.monitor_overhead);
        if (open_loop_) {
            // Zero-delta adds materialize the full jobs_* schema even
            // for runs that never delayed or shed, so host and sim
            // open-loop runs expose identical metric names.
            metrics->add("runtime.jobs_admitted", 0);
            metrics->add("runtime.jobs_delayed", 0);
            metrics->add("runtime.jobs_shed", 0);
            metrics->add("runtime.jobs_deadline_missed", 0);
            metrics->set("runtime.slo_attainment",
                         result.slo_attainment);
            metrics->set("runtime.backpressure_state",
                         static_cast<double>(backpressure_));
        }
        if (options_.counters != nullptr) {
            // Published whenever a provider is configured -- zeros
            // under the null fallback -- so host and sim runs expose
            // the identical metric-name schema either way.
            metrics->add("runtime.perf.llc_misses",
                         static_cast<std::int64_t>(
                             counter_totals_.llc_misses));
            metrics->add(
                "runtime.perf.cycles",
                static_cast<std::int64_t>(counter_totals_.cycles));
            metrics->add("runtime.perf.stalled_cycles",
                         static_cast<std::int64_t>(
                             counter_totals_.stalled_cycles));
            metrics->add("runtime.perf.instructions",
                         static_cast<std::int64_t>(
                             counter_totals_.instructions));
        }
    }

    backend_->finalize(result);
    return result;
}

obs::TraceData
toTraceData(const stream::TaskGraph &graph, const RunResult &result)
{
    obs::TraceData data;
    data.events = result.trace;
    data.mtl_trace = result.mtl_trace;
    data.decisions = result.decisions;
    data.spans = result.spans;
    data.alerts = result.alerts;
    data.alerts_dropped = result.alerts_dropped;
    data.health_enabled = result.health_enabled;
    data.phase_names.reserve(
        static_cast<std::size_t>(graph.phaseCount()));
    for (const stream::Phase &phase : graph.phases())
        data.phase_names.push_back(phase.name);
    return data;
}

namespace {

std::string
violation(const char *what, stream::TaskId id)
{
    return std::string(what) + " (task " + std::to_string(id) + ")";
}

} // namespace

std::string
validateSchedule(const stream::TaskGraph &graph, const RunResult &result,
                 int contexts)
{
    const auto n_tasks = static_cast<std::size_t>(graph.taskCount());
    if (result.trace.size() != n_tasks)
        return "trace has " + std::to_string(result.trace.size()) +
               " entries for " + std::to_string(graph.taskCount()) +
               " tasks";

    std::vector<int> runs(n_tasks, 0);
    for (const obs::TaskEvent &entry : result.trace) {
        if (entry.task < 0 || entry.task >= graph.taskCount())
            return violation("trace entry with bad task id", entry.task);
        ++runs[static_cast<std::size_t>(entry.task)];
        if (entry.end < entry.start)
            return violation("task ends before it starts", entry.task);
        if (entry.worker < 0 || entry.worker >= contexts)
            return violation("task ran on a bad context", entry.task);
    }
    for (std::size_t id = 0; id < n_tasks; ++id)
        if (runs[id] != 1)
            return violation("task did not run exactly once",
                             static_cast<stream::TaskId>(id));

    // Index trace entries by task for dependency checks.
    std::vector<const obs::TaskEvent *> by_task(n_tasks, nullptr);
    for (const obs::TaskEvent &entry : result.trace)
        by_task[static_cast<std::size_t>(entry.task)] = &entry;

    // No overlap per execution context.
    std::vector<std::vector<const obs::TaskEvent *>> per_context(
        static_cast<std::size_t>(contexts));
    for (const obs::TaskEvent &entry : result.trace)
        per_context[static_cast<std::size_t>(entry.worker)].push_back(
            &entry);
    for (auto &entries : per_context) {
        std::sort(entries.begin(), entries.end(),
                  [](const obs::TaskEvent *a, const obs::TaskEvent *b) {
                      return a->start < b->start;
                  });
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (entries[i]->start < entries[i - 1]->end - 1e-12)
                return violation("two tasks overlap on one context",
                                 entries[i]->task);
        }
    }

    // MTL respected at every memory-task start instant.
    for (const obs::TaskEvent &entry : result.trace) {
        if (!entry.is_memory)
            continue;
        int concurrent = 0;
        for (const obs::TaskEvent &other : result.trace) {
            if (!other.is_memory)
                continue;
            if (other.start <= entry.start + 1e-15 &&
                entry.start < other.end - 1e-15) {
                ++concurrent;
            }
            // A zero-length memory task that dispatched exactly at
            // this instant still occupied a slot; count it when it
            // is the task under test itself.
        }
        if (concurrent == 0)
            concurrent = 1; // entry itself had zero length
        if (concurrent > entry.mtl)
            return violation("MTL exceeded at dispatch", entry.task);
    }

    // Dependencies.
    for (const stream::Task &task : graph.tasks()) {
        const obs::TaskEvent *entry =
            by_task[static_cast<std::size_t>(task.id)];
        for (stream::TaskId dep : task.deps) {
            const obs::TaskEvent *dep_entry =
                by_task[static_cast<std::size_t>(dep)];
            if (entry->start < dep_entry->end - 1e-12)
                return violation("task started before its dependency",
                                 task.id);
        }
    }
    // Phase barrier: min start of phase p+1 >= max end of phase p.
    std::vector<double> phase_min_start(
        static_cast<std::size_t>(graph.phaseCount()), 1e300);
    std::vector<double> phase_max_end(
        static_cast<std::size_t>(graph.phaseCount()), 0.0);
    for (const obs::TaskEvent &entry : result.trace) {
        auto &min_start =
            phase_min_start[static_cast<std::size_t>(entry.phase)];
        auto &max_end =
            phase_max_end[static_cast<std::size_t>(entry.phase)];
        min_start = std::min(min_start, entry.start);
        max_end = std::max(max_end, entry.end);
    }
    for (int p = 1; p < graph.phaseCount(); ++p) {
        if (phase_min_start[static_cast<std::size_t>(p)] <
            phase_max_end[static_cast<std::size_t>(p - 1)] - 1e-12) {
            return "phase " + std::to_string(p) +
                   " started before phase " + std::to_string(p - 1) +
                   " completed";
        }
    }

    return {};
}

} // namespace tt::exec
