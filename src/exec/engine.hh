/**
 * @file
 * Backend-agnostic MTL scheduling engine.
 *
 * The paper describes ONE scheduling discipline (Sec. IV/V): pairs
 * of memory and compute tasks drained from barrier-separated phases,
 * compute dispatched freely, memory admission gated by the policy's
 * current MTL through "a lock and a counter". The repo used to
 * implement that discipline twice -- once over real threads
 * (runtime::Runtime) and once over the discrete-event simulator
 * (simrt::SimRuntime). This layer extracts the shared state machine
 * into a single Engine parameterized over a small ExecutionBackend
 * interface (clock, attempt dispatch, completion delivery, timers),
 * so host and sim runs make identical policy-visible decisions by
 * construction and every scheduler feature -- pair-granularity
 * retries with exponential backoff, fault-plan mirroring, sample
 * screening, audit/decision capture, metrics publication,
 * time-series sampling, watchdog deadlines -- lands exactly once.
 *
 * runtime::Runtime and simrt::SimRuntime are now thin adapters that
 * pick a backend (HostThreadBackend / SimBackend) and delegate here.
 */

#ifndef TT_EXEC_ENGINE_HH
#define TT_EXEC_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.hh"
#include "fault/fault_plan.hh"
#include "load/admission.hh"
#include "load/arrival.hh"
#include "obs/health.hh"
#include "obs/metric_shards.hh"
#include "obs/trace.hh"
#include "stream/task_graph.hh"
#include "util/concurrency/mpmc_queue.hh"
#include "util/concurrency/sharded_gate.hh"

namespace tt {
class MetricsRegistry;
}

namespace tt::obs {
class LiveFileSink;
}

namespace tt::exec {

class Engine;

/** Options controlling an Engine run (host and sim alike). */
struct EngineOptions
{
    /**
     * Worker threads for the host backend (= hardware contexts, the
     * model's n). The sim backend ignores it and uses the machine's
     * context count.
     */
    int threads = 1;

    /** Pin worker i to CPU i % hw_cpus (host backend, Linux only). */
    bool pin_affinity = true;

    /**
     * Per-context event-trace ring capacity. The rings are sized to
     * min(trace_capacity, task count), so the default traces every
     * task of any reasonable graph; shrink it to bound memory on
     * huge graphs (the oldest events are then dropped and counted).
     */
    std::size_t trace_capacity = 1 << 16;

    /**
     * Optional metrics sink (not owned). When set, the engine
     * publishes "runtime.*" counters/gauges/histograms: T_m and T_c
     * per MTL, ready-queue depths, the mem_in_flight high-water
     * mark, pin failures. Bind the same registry to the policy to
     * get the "policy.*" series alongside.
     */
    MetricsRegistry *metrics = nullptr;

    /**
     * Optional fault-injection plan (not owned). Faults are applied
     * deterministically per (task, attempt); see fault/fault_plan.hh.
     */
    const fault::FaultPlan *fault_plan = nullptr;

    /**
     * Attempts beyond the first before a failing task fails the
     * run. Failed compute attempts are retried at *pair*
     * granularity: the pair's memory body is re-executed first so
     * the compute body sees freshly gathered data. Each retry is
     * counted in `runtime.task_retries`.
     */
    int max_task_retries = 3;

    /**
     * Base of the exponential retry backoff: attempt a waits
     * base * 2^a seconds (capped at 50 ms) before re-executing.
     */
    double retry_backoff_seconds = 100e-6;

    /**
     * Watchdog deadline for the whole run, in engine-clock seconds
     * (wall time on the host backend, simulated time on the sim
     * backend); 0 disables it. A run that has not drained by then is
     * assumed wedged (stalled worker, livelocked policy). On the
     * host the watchdog dumps diagnostics -- crash-dump hooks flush
     * bound trace rings and metrics -- and terminates the process
     * with `watchdog_exit_code`, because wedged threads cannot be
     * unwound. On the sim (and any backend without real threads) it
     * fails the run in-band through the same diagnostics path:
     * `failed`/`watchdog_fired`/`failure_reason` are set and run()
     * returns normally.
     */
    double watchdog_seconds = 0.0;

    /** Process exit code used when the host watchdog fires. */
    int watchdog_exit_code = 3;

    /**
     * Optional time-series sink (not owned). When set, the engine
     * appends one JSONL row (see obs/timeseries.hh) every
     * `timeseries_interval_seconds` of engine-clock time while the
     * run is live, plus one final row at drain: time, current MTL,
     * in-flight memory tasks, ready-queue depths, pairs done,
     * selections.
     */
    std::ostream *timeseries_out = nullptr;

    /** Sampling period of the time series, engine-clock seconds. */
    double timeseries_interval_seconds = 1e-3;

    /**
     * Optional hardware-counter source (not owned; see
     * obs/perf/counters.hh). When set, the backend brackets every
     * task-attempt body with counter reads, the per-attempt delta
     * rides on the attempt's obs::TaskEvent (retried attempts are
     * recorded separately, never merged), and the engine publishes
     * "runtime.perf.*" aggregate counters plus the
     * "runtime.perf_unavailable" gauge (1 when the provider degraded
     * to null -- e.g. perf_event_open refused in a container -- in
     * which case the run proceeds unchanged with zero reads).
     */
    obs::perf::CounterProvider *counters = nullptr;

    /**
     * Optional open-loop arrival plan (not owned). When set, the run
     * becomes open-loop: pairs are *offered* at the plan's arrival
     * offsets (one job per pair, single-phase graphs only) instead of
     * being all ready at t=0. Each arrival passes through a
     * deterministic admission controller (see load/admission.hh)
     * that may ACCEPT, DELAY or SHED it; shed pairs never execute.
     * Arrivals are driven by backend timers -- simulated time on the
     * sim backend, wall clock on the host -- but admission decisions
     * depend only on the plan and `admission`, so both backends shed
     * the identical jobs.
     */
    const load::ArrivalPlan *arrival_plan = nullptr;

    /** Admission-control knobs for open-loop runs (see
     *  load/admission.hh; defaults resolve against the backend's
     *  context count). Ignored when arrival_plan is null. */
    load::AdmissionConfig admission;

    /**
     * Per-run span-buffer capacity (see obs/span.hh). Sized to
     * min(span_capacity, pair count); when a run outgrows it the
     * oldest spans are overwritten and counted in the
     * `obs.spans_dropped` counter and RunResult::spans_dropped.
     */
    std::size_t span_capacity = 1 << 16;

    /**
     * Optional live OpenMetrics snapshot sink (not owned; see
     * obs/live.hh). When set, the engine rewrites the snapshot file
     * every `live_interval_seconds` of engine-clock time plus once
     * at drain -- on the sim backend that yields periodic
     * *simulated-time* snapshots. The host backend typically serves
     * live metrics through obs::LiveMetricsServer instead (real
     * time, on demand), which needs no engine involvement.
     */
    obs::LiveFileSink *live_sink = nullptr;

    /** Snapshot period of the live sink, engine-clock seconds. */
    double live_interval_seconds = 0.1;

    /**
     * Streaming health engine (see obs/health.hh). When
     * health.enabled the engine evaluates the online detectors over
     * deterministic job windows (every health.window_jobs offered
     * jobs, under the scheduler mutex) and hot-path tick windows
     * (every health.tick_seconds of engine-clock time), publishes
     * `obs.alerts_*` metrics, and returns the fired/cleared edge
     * stream in RunResult::alerts. The job-window detectors consume
     * only admission-model state, so their alert sequence is
     * identical on host and sim for the same plan and config.
     */
    obs::HealthConfig health;
};

/** Audit record of one offered job's admission verdict (open-loop
 *  runs; one record per plan job, in arrival order). */
struct JobRecord
{
    int pair = 0;
    double arrival_seconds = 0.0; ///< plan arrival offset
    int priority = 0;
    load::AdmissionDecision decision = load::AdmissionDecision::Accept;
    load::ShedReason shed_reason = load::ShedReason::None;
    core::BackpressureState state = core::BackpressureState::Accept;
    int backlog = 0; ///< admission model's backlog at arrival
    double predicted_response = 0.0;
};

/** One retry the engine granted, in grant order. */
struct RetryRecord
{
    stream::TaskId task = stream::kInvalidTask;
    int attempt = 0; ///< the failed attempt being retried
};

/** Per-phase aggregates (phase order). */
struct PhaseResult
{
    std::string name;
    double tm_mean = 0.0;
    double tc_mean = 0.0;
    double start = 0.0; ///< first memory-task start, seconds
    double end = 0.0;   ///< last compute-task end, seconds
};

/**
 * Everything measured during one run, on any backend. Times are
 * engine-clock seconds from run start (wall on host, simulated on
 * sim). The simulator-only fields at the bottom stay zero on the
 * host backend.
 */
struct RunResult
{
    double seconds = 0.0; ///< makespan of the whole graph

    /** One sample per completed pair, in completion order. */
    std::vector<core::PairSample> samples;

    core::PolicyStats policy_stats;
    std::vector<std::pair<double, int>> mtl_trace;

    /** Policy decision audit log (see core/audit.hh). */
    std::vector<core::MtlDecision> decisions;

    double avg_tm = 0.0; ///< mean memory-task duration
    double avg_tc = 0.0; ///< mean compute-task duration

    /** Fraction of pairs consumed while probing candidate MTLs. */
    double monitor_overhead = 0.0;

    /** Peak number of concurrently executing memory tasks. */
    int peak_mem_in_flight = 0;

    /** Merged per-context event trace, ordered by start time. */
    std::vector<obs::TaskEvent> trace;

    /** Events lost to trace-ring overwrites (0 unless capped). */
    std::uint64_t trace_dropped = 0;

    /** Per-job causal spans in terminal order (see obs/span.hh);
     *  closed-loop runs get spans too, with arrival = the instant
     *  the pair's memory task became ready. */
    std::vector<obs::JobSpan> spans;

    /** Spans lost to span-buffer overwrites (0 unless capped). */
    std::uint64_t spans_dropped = 0;

    /** Time-series sampler ticks skipped because the scheduler lock
     *  was busy (try-lock miss); those rows are simply absent from
     *  the output. Also published as `obs.timeseries_skipped`. */
    std::int64_t timeseries_skipped = 0;

    /** Per-phase aggregates (phase order). */
    std::vector<PhaseResult> phases;

    /** Every granted retry, in grant order (deterministic per seed
     *  on a single-context backend). */
    std::vector<RetryRecord> retries;

    /** Workers whose CPU-affinity pin failed (host backend only). */
    long pin_failures = 0;

    /** Task attempts re-executed after a failure. */
    long task_retries = 0;

    /** Tasks abandoned after exhausting max_task_retries. */
    long task_failures = 0;

    /** True when the run carried hardware-counter attribution. */
    bool has_counters = false;

    /** Whole-run counter totals (sum of per-event deltas). */
    obs::perf::CounterSet counters;

    // --- open-loop job accounting (zero for closed-loop runs) ---

    long jobs_offered = 0;  ///< jobs in the arrival plan
    long jobs_admitted = 0; ///< admitted (includes delayed)
    long jobs_delayed = 0;  ///< admitted past the delay watermark
    long jobs_shed = 0;     ///< rejected at admission
    long jobs_deadline_missed = 0; ///< admitted but finished late

    /**
     * Fraction of *offered* jobs that completed within their SLO;
     * shed jobs count as missed. 1.0 when no SLO was configured
     * (attainment then degenerates to admitted goodput fraction).
     */
    double slo_attainment = 1.0;

    /** Per-job admission audit records, in arrival order. */
    std::vector<JobRecord> jobs;

    /** Response time (completion - arrival) of every admitted pair
     *  that completed, in completion order. */
    std::vector<double> response_seconds;

    // --- health-engine output (empty unless options.health.enabled) ---

    /** True when the run evaluated the health detectors. */
    bool health_enabled = false;

    /** Alert fired/cleared edges, oldest first (bounded ring). */
    std::vector<obs::AlertEvent> alerts;

    /** Edges evicted from the alert ring. */
    std::uint64_t alerts_dropped = 0;

    /** True when any critical rule was still active at drain. */
    bool critical_alert_active = false;

    /** True when the run aborted instead of draining the graph. */
    bool failed = false;

    /** True when the watchdog deadline caused the failure. */
    bool watchdog_fired = false;

    /** Human-readable cause when failed (empty otherwise). */
    std::string failure_reason;

    // --- simulator-only measurements (0 on the host backend) ---

    std::uint64_t dram_accesses = 0;
    double bus_utilisation = 0.0; ///< mean across channels

    /** Peak LLC occupancy observed (bytes). */
    std::uint64_t peak_llc_occupancy = 0;
};

/** One task attempt the engine asks a backend to execute. */
struct AttemptSpec
{
    stream::TaskId task = stream::kInvalidTask;
    int attempt = 0; ///< 0 = first execution

    /**
     * Pair-granularity retry: re-run the pair's *memory* body before
     * this compute attempt so it sees freshly gathered data.
     */
    bool rerun_memory_first = false;

    /** Faults to realize during this attempt (all clear when no
     *  plan is attached). */
    fault::TaskFaults faults;

    /** Stall duration used when faults.stall is set, seconds. */
    double stall_seconds = 0.0;
};

/** What a backend reports back for one finished attempt. */
struct AttemptOutcome
{
    bool failed = false; ///< attempt threw / injected failure
    double start = 0.0;  ///< body start, engine-clock seconds
    double end = 0.0;    ///< body end (incl. fault penalties)
    std::string error;   ///< cause when failed (exception text)

    /** True when `counters` holds this attempt's counter delta
     *  (EngineOptions::counters set and the provider is live). */
    bool has_counters = false;
    obs::perf::CounterSet counters;
};

/**
 * What the engine needs from an execution substrate: a clock, a way
 * to start a task attempt on an idle context, one-shot timers (for
 * retry backoff, the watchdog and the time-series sampler), and a
 * drive loop that blocks until the run is over.
 *
 * Contract: startAttempt()/after()/cancel() are called with the
 * engine lock held and must not call back into the engine
 * synchronously. Completions are delivered by calling
 * Engine::onAttemptDone(context, outcome) from the backend's
 * execution context (a worker thread, a sim event, a test loop);
 * timer callbacks fire the std::function verbatim. runDrained() is
 * the engine's notification that no further attempts or timer
 * callbacks are needed; drive() must then return.
 */
class ExecutionBackend
{
  public:
    /** Timer handle; 0 is reserved for "no timer". */
    using TimerToken = std::uint64_t;

    virtual ~ExecutionBackend() = default;

    /** Execution contexts available (worker threads / hw contexts). */
    virtual int contexts() const = 0;

    /** Engine-clock seconds since beginRun(). */
    virtual double now() const = 0;

    /** Called once at the start of run(); stamps the clock origin. */
    virtual void beginRun(Engine &engine) { engine_ = &engine; }

    /** Begin executing one attempt on an idle context. */
    virtual void startAttempt(int context, const AttemptSpec &spec) = 0;

    /** Schedule `fn` to run `seconds` from now; returns a handle. */
    virtual TimerToken after(double seconds,
                             std::function<void()> fn) = 0;

    /** Cancel a pending timer (no-op if it already fired). */
    virtual void cancel(TimerToken token) = 0;

    /** Block until the run is over (drive workers / event queue). */
    virtual void drive(Engine &engine) = 0;

    /** The run finished: release workers, stop timers. */
    virtual void runDrained() {}

    /**
     * True when this backend's workers *pull* attempts from the
     * engine (Engine::nextAttempt) instead of having the engine push
     * them through startAttempt(). Pull-mode runs take the engine's
     * lock-free fast path: MPMC ready rings, sharded admission gate,
     * per-worker metric shards. Push mode (sim, mocks) keeps every
     * transition under the scheduler mutex and stays bit-identical
     * to the historical behaviour.
     */
    virtual bool pullDispatch() const { return false; }

    /** A pair completed; the sim backend releases its LLC footprint. */
    virtual void
    pairCompleted(const stream::Task &memory_task)
    {
        (void)memory_task;
    }

    /** CPU-affinity pin failures observed so far (host backend). */
    virtual long pinFailures() const { return 0; }

    /**
     * True when a fired watchdog must kill the process (real threads
     * may be wedged holding locks and cannot be unwound); false to
     * fail the run in-band and let in-flight work drain.
     */
    virtual bool watchdogTerminatesProcess() const { return false; }

    /** Terminate without unwinding (only called when the above is
     *  true, after diagnostics were dumped). */
    [[noreturn]] virtual void terminateProcess(int exit_code);

    /** Fill backend-specific RunResult fields / publish gauges. */
    virtual void finalize(RunResult &result) { (void)result; }

  protected:
    Engine *engine_ = nullptr; ///< set by beginRun()
};

/**
 * The MTL-gated scheduling state machine, shared by every backend:
 * phase activation, ready queues, compute-first dispatch with memory
 * admission against policy.currentMtl(), pair timing and sample
 * delivery (with fault-plan corruption mirroring), bounded retries
 * with exponential backoff, clean run failure, watchdog and
 * time-series timers, trace rings and metrics.
 *
 * Thread-safe. Two locking disciplines coexist:
 *
 *  - Push mode (sim, mocks): all scheduler state under one mutex,
 *    the paper's "lock and a counter", bit-identical to the
 *    historical engine. Single-threaded backends never contend.
 *
 *  - Pull mode (host threads): the per-task fast path -- ready-task
 *    dispatch, MTL admission, memory-task completion, successor
 *    unlock, trace/metric publication -- is lock-free (MPMC rings,
 *    a sharded admission gate, atomic dependency/progress counters,
 *    per-worker metric shards). Only the slow path -- pair sample
 *    delivery to the policy, retries, failures, arrivals, phase
 *    barriers, watchdog, finish -- takes the (now rarely touched)
 *    mutex. See docs/substrate.md for the full memory-ordering
 *    argument.
 */
class Engine
{
  public:
    /** `options` is borrowed and must outlive the engine. */
    Engine(const stream::TaskGraph &graph,
           core::SchedulingPolicy &policy, const EngineOptions &options);

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Execute the graph on `backend` to completion; callable once. */
    RunResult run(ExecutionBackend &backend);

    /**
     * Backend upcall: the attempt running on `context` finished.
     * Success completes the task (samples, successors, barriers);
     * failure schedules a backoff retry or fails the run.
     */
    void onAttemptDone(int context, const AttemptOutcome &outcome);

    /**
     * Pull-mode backend upcall: block until an attempt is available
     * for `worker` and fill `spec`, or return false when the run is
     * over and the worker should exit. Ready tasks come off the MPMC
     * rings; memory admission goes through the sharded gate; a
     * worker whose task is in retry backoff parks until its own
     * retry fires (the context stays reserved, as in push mode).
     */
    bool nextAttempt(int worker, AttemptSpec &spec);

    /** Lock-free: true once the run aborted (workers should bail). */
    bool
    runFailed() const
    {
        return run_failed_.load(std::memory_order_relaxed);
    }

  private:
    struct PendingRetry
    {
        /** Written under mutex_; read lock-free by the parked
         *  worker's sleep predicate. */
        std::atomic<bool> active{false};
        ExecutionBackend::TimerToken token = 0;
    };

    void activatePhaseLocked(int phase, double now);
    /** Admit every plan job due at or before plan offset `upto`. */
    void processArrivalsLocked(double upto);
    /** Arm the arrival timer for the next undelivered plan job. */
    void scheduleNextArrivalLocked(double from);
    /** Arrival timer fired: deliver due jobs, re-arm, dispatch. */
    void onArrivalTimer();
    /** Run one job through admission; queue or shed its pair. */
    void admitJobLocked(const load::JobSpec &job);
    void tryScheduleLocked();
    /** Dispatch a fresh (attempt-0) task onto an idle context. */
    void dispatchLocked(int context, stream::TaskId id);
    /** Hand the task's current attempt to the backend. */
    void startAttemptLocked(int context, stream::TaskId id);
    void completeLocked(int context, stream::TaskId id,
                        const AttemptOutcome &outcome);
    /** Exhausted/abandoned attempt: count the failure, abort run. */
    void failTaskLocked(int context, stream::TaskId id,
                        const std::string &why);
    /** Retry backoff timer fired for `context`. */
    void onRetryTimer(int context);
    /** Free a context whose retry was abandoned by a failed run. */
    void abandonContextLocked(int context, stream::TaskId id);
    void abandonPendingRetriesLocked();
    /** Finish the run when drained (or failed and idle). */
    void maybeFinishLocked();
    /** Watchdog timer fired: terminate (host) or fail in-band. */
    void onWatchdogDeadline();
    /** Self-rescheduling time-series sampler tick. */
    void onTimeseriesTick();
    void emitTimeseriesRowLocked();
    /** Self-rescheduling live OpenMetrics snapshot tick. */
    void onLiveTick();
    void liveSnapshotLocked();
    /** Self-rescheduling health tick (hot-path tick windows). */
    void onHealthTick();
    /** Fold one job verdict into the current job window; close the
     *  window (and run the detectors) every health.window_jobs. */
    void healthJobVerdictLocked(const load::JobSpec &job,
                                const JobRecord &record);
    /** Close the current (possibly partial) job window. */
    void healthCloseJobWindowLocked();
    /** Close the current tick window: snapshot hot-path counters,
     *  hand the deltas to the detectors. */
    void healthTickWindowLocked();
    /** Flush partial windows and publish final health state. */
    void healthFinishLocked();
    /** Mirror health state into the metrics registry (gauges set,
     *  counters advanced by delta since last publication). */
    void publishHealthMetricsLocked();
    /** Start assembling the span of `pair` (memory task ready). */
    void openSpan(int pair, int priority, double arrival);
    /** Append one finished attempt to the pair's open span. */
    void spanAttempt(stream::TaskId id, int worker,
                           const AttemptOutcome &outcome, bool failed,
                           double backoff_seconds);
    /** Finalize the pair's span: critical path, buffer, metrics. */
    void closeSpan(int pair, double end,
                         obs::SpanOutcome outcome);
    /** Best-effort diagnostics dump (crash hook / watchdog path). */
    void crashDump();
    /** Assemble the RunResult after drive() returned. */
    RunResult finishResult();

    // --- pull-mode (lock-free fast path) helpers ---

    /** Route a newly ready task to the deque (push) or ring (pull). */
    void enqueueMemoryReady(stream::TaskId id);
    void enqueueComputeReady(stream::TaskId id);
    /** Stamp dispatch state and build the attempt-0 spec (pull). */
    void prepareDispatch(int worker, stream::TaskId id, int mtl,
                         AttemptSpec &spec);
    /** Lock-free completion of a successful memory attempt (pull). */
    void completeMemoryFast(int worker, stream::TaskId id,
                            const AttemptOutcome &outcome);
    /** Slow-path completion (pair / failed-run drain) in pull mode. */
    void completePullSlowLocked(int worker, stream::TaskId id,
                                const AttemptOutcome &outcome);
    /** Pull-mode failure: retry with backoff or fail the run. */
    void handlePullFailureLocked(int worker, stream::TaskId id,
                                 const AttemptOutcome &outcome);
    /** Retry backoff elapsed for `worker` (pull mode). */
    void onRetryTimerPull(int worker);
    /** Drop the reserved attempt of `worker` (failed run, pull). */
    void abandonWorkerAttemptLocked(int worker);
    /** Record attempt / unlock successors, mode-agnostic pieces. */
    void recordAttemptEvent(int worker, stream::TaskId id,
                            const AttemptOutcome &outcome);
    void unlockSuccessors(stream::TaskId id, double now);
    /** Compute-task completion tail: sample, policy, span close. */
    void completePairLocked(int worker, stream::TaskId id,
                            double start, double end);
    /** Observe ready-queue depths (shards in pull mode). */
    void readyDepthObserve(int worker);
    /** Abort the run once: reason, warn, abandon reservations. */
    void markRunFailedLocked(const std::string &reason);
    /** Publish policy_.currentMtl() to mtl_cache_; wake on raise. */
    void refreshMtlCacheLocked();
    /** Park `worker` until work might exist (bounded backstop). */
    void parkWorker(int worker);
    /** True when `worker` has nothing it could possibly do now. */
    bool workerShouldSleep(int worker) const;
    /** Nudge parked workers (ring push, retry fire, MTL raise...). */
    void wakeWorkers();
    /** Memory tasks currently admitted, either mode. */
    int memInFlightNow() const;

    const stream::TaskGraph &graph_;
    core::SchedulingPolicy &policy_;
    const EngineOptions &options_;
    ExecutionBackend *backend_ = nullptr;

    std::mutex mutex_;

    /** Per-task unfinished-dependency counts. Push mode decrements
     *  under mutex_; pull mode uses fetch_sub(acq_rel), whose final
     *  decrement carries the happens-before edge from predecessor
     *  completion state (task_start_/task_end_) to the dispatcher. */
    std::vector<std::atomic<int>> deps_left_;
    std::vector<std::vector<stream::TaskId>> succs_;
    std::deque<stream::TaskId> ready_memory_;
    std::deque<stream::TaskId> ready_compute_;
    std::vector<bool> context_busy_;
    std::vector<std::atomic<stream::TaskId>> running_;
    std::vector<PendingRetry> pending_retry_;
    std::vector<int> attempts_; ///< failed attempts per task

    // --- pull-mode state (engaged iff backend->pullDispatch()) ---
    bool pull_mode_ = false;
    std::optional<util::MpmcQueue<stream::TaskId>> ready_memory_ring_;
    std::optional<util::MpmcQueue<stream::TaskId>> ready_compute_ring_;
    std::optional<util::ShardedGate> gate_; ///< mem_in_flight, sharded
    std::optional<obs::ShardedMetrics> metric_shards_;
    /** policy_.currentMtl() mirrored after every policy interaction
     *  (all under mutex_); workers read it lock-free as the
     *  admission bound. */
    std::atomic<int> mtl_cache_{0};
    /** Dispatched attempts not yet completed/abandoned, including
     *  attempts reserved through a retry backoff. */
    std::atomic<int> inflight_attempts_{0};
    /** Per-worker "your granted retry is due" flags (set by the
     *  retry timer, consumed by the owning worker). */
    std::vector<std::atomic<bool>> retry_ready_;
    std::vector<AttemptSpec> retry_spec_; ///< stashed under mutex_
    /** Per-worker hw-counter aggregation; folded after the workers
     *  joined, so the slots need no synchronisation beyond join. */
    struct WorkerCounters
    {
        bool saw = false;
        obs::perf::CounterSet totals;
    };
    std::vector<WorkerCounters> worker_counters_;
    // Parking lot for idle workers. parked_ is a fast-path hint so
    // producers skip the lot entirely while everyone is busy; the
    // generation counter (under park_mutex_) makes wake-ups sticky
    // across the register-then-recheck race.
    std::mutex park_mutex_;
    std::condition_variable park_cv_;
    std::atomic<int> parked_{0};
    std::uint64_t park_gen_ = 0;
    /** Wake-ups that actually notified the lot (counted under
     *  park_mutex_ on the already-slow notify path); parks are
     *  counted per worker through the metric shards. */
    std::uint64_t wake_notifies_ = 0;

    // Open-loop state (see EngineOptions::arrival_plan).
    bool open_loop_ = false;
    std::size_t next_job_ = 0;      ///< next undelivered plan job
    double scheduled_arrival_ = 0.0; ///< plan offset the timer targets
    ExecutionBackend::TimerToken arrival_token_ = 0;
    std::optional<load::AdmissionController> admission_;
    core::BackpressureState backpressure_ =
        core::BackpressureState::Accept;
    int shed_tasks_ = 0; ///< tasks of shed pairs (never dispatched)
    long jobs_admitted_ = 0;
    long jobs_delayed_ = 0;
    long jobs_shed_ = 0;
    long jobs_deadline_missed_ = 0;
    std::vector<JobRecord> job_log_;
    std::vector<double> response_log_;
    std::vector<double> job_arrival_stamp_; ///< per pair, engine clock
    std::vector<double> job_slo_;           ///< per pair, seconds

    int mem_in_flight_ = 0;      ///< push mode (gate_ in pull mode)
    int peak_mem_in_flight_ = 0; ///< push mode (gate_ peak in pull)
    int current_phase_ = -1;
    std::atomic<int> phase_remaining_{0};
    std::atomic<int> tasks_done_{0};
    bool started_ = false;
    bool finished_ = false;

    // Per-task and per-pair measurement state (engine-clock seconds).
    std::vector<double> task_start_;
    std::vector<double> task_end_;
    std::vector<int> task_mtl_; ///< MTL at first dispatch (trace)
    std::vector<int> pair_mem_mtl_;
    std::vector<core::PairSample> samples_;
    std::vector<RetryRecord> retry_log_;

    std::optional<obs::Tracer> tracer_; ///< one ring per context

    // Per-job causal spans (see obs/span.hh). Appends for one pair
    // are serialized by the pair's own dependency chain (memory
    // completes-before compute dispatches), but *different* pairs'
    // spans open/close concurrently in pull mode, so the open flags
    // must be independent atomics -- a packed vector<bool> would
    // race on the shared words.
    std::optional<obs::SpanBuffer> span_buffer_;
    std::vector<obs::JobSpan> open_span_; ///< per pair, in assembly
    std::vector<std::atomic<bool>> span_open_;

    // Self-observability: wall-clock nanoseconds spent inside
    // observability code (steady clock on every backend -- this is
    // the *real* cost of tracing, not simulated time), published as
    // obs.overhead.* counters. trace_record accumulates from the
    // lock-free completion path, hence atomic.
    std::atomic<std::uint64_t> obs_trace_record_ns_{0};
    std::uint64_t obs_sampler_ns_ = 0;
    std::uint64_t obs_health_ns_ = 0; ///< detector + publish cost

    // Streaming health engine (options_.health.enabled). All state
    // below is written under mutex_; the detectors themselves live
    // in obs::HealthEngine.
    std::optional<obs::HealthEngine> health_;
    std::uint64_t health_job_window_ = 0;  ///< next job-window index
    int health_window_offered_ = 0;        ///< jobs in open window
    int health_window_shed_ = 0;
    int health_window_predicted_late_ = 0;
    long health_window_backlog_ = 0;       ///< model backlog, latest
    std::uint64_t health_tick_window_ = 0; ///< next tick-window index
    // Previous hot-path counter snapshots (tick-window deltas).
    long health_prev_gate_failures_ = 0;
    long health_prev_gate_folds_ = 0;
    std::uint64_t health_prev_trace_dropped_ = 0;
    std::uint64_t health_prev_span_dropped_ = 0;
    std::uint64_t health_prev_records_ = 0;
    std::uint64_t health_prev_ebr_advances_ = 0;
    // Model-bound window sums (accumulated in completePairLocked).
    int health_window_samples_ = 0;
    double health_window_sum_tm_ = 0.0;
    double health_window_sum_bound_ = 0.0;
    // Counter values already pushed to the registry, per rule index
    // (publishHealthMetricsLocked adds only the delta).
    std::vector<std::uint64_t> health_pub_fired_;
    std::vector<std::uint64_t> health_pub_cleared_;
    std::uint64_t health_pub_dropped_ = 0;
    std::atomic<ExecutionBackend::TimerToken> health_token_{0};

    /** Sampler rows skipped because the scheduler mutex was busy
     *  (try_to_lock miss); published as obs.timeseries_skipped. */
    std::atomic<std::int64_t> timeseries_skipped_{0};

    // Hardware-counter aggregation (options_.counters only).
    bool saw_counters_ = false;
    obs::perf::CounterSet counter_totals_;

    // Fault tolerance. run_failed_ is written under mutex_ but read
    // lock-free by sleeping workers and the crash-dump path.
    std::atomic<bool> run_failed_{false};
    std::string failure_reason_;
    std::atomic<long> task_retries_{0};
    long task_failures_ = 0;
    bool watchdog_fired_ = false;

    // run_complete_ gates late timer callbacks (watchdog, sampler).
    std::atomic<bool> run_complete_{false};
    ExecutionBackend::TimerToken watchdog_token_ = 0;
    // The sampler/live ticks re-arm their own token *outside* the
    // scheduler mutex (the sampler only try-locks it), racing with
    // the cancel at finish; atomic tokens keep that race benign (a
    // stray timer is gated by run_complete_).
    std::atomic<ExecutionBackend::TimerToken> timeseries_token_{0};
    std::atomic<ExecutionBackend::TimerToken> live_token_{0};
    double drain_seconds_ = -1.0; ///< engine clock at finish
};

/**
 * Couple a run's event trace with the policy's MTL transition log
 * and the graph's phase names, ready for obs::writeChromeTrace.
 */
obs::TraceData toTraceData(const stream::TaskGraph &graph,
                           const RunResult &result);

/**
 * Check the structural invariants of a recorded schedule against its
 * graph:
 *  - every task ran exactly once, with end >= start;
 *  - no two tasks overlap on one context;
 *  - at every memory-task start instant, the number of memory tasks
 *    in flight (including the new one) is within the MTL the policy
 *    had published at that moment;
 *  - a task starts only after its dependencies finished;
 *  - phase barriers hold: no task of phase p+1 starts before every
 *    task of phase p ended.
 *
 * Returns an empty string when the schedule is valid, otherwise a
 * description of the first violation (for test diagnostics).
 */
std::string validateSchedule(const stream::TaskGraph &graph,
                             const RunResult &result, int contexts);

} // namespace tt::exec

#endif // TT_EXEC_ENGINE_HH
