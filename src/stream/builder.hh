/**
 * @file
 * Convenience builder for stream programs.
 *
 * StreamProgramBuilder packages the gather-compute-scatter style into
 * a declarative API: describe each pair once (host closures plus sim
 * resource descriptor) and receive a validated TaskGraph. The builder
 * enforces the paper's "equally-sized tasks" guideline per phase by
 * asserting that every pair in a phase carries the same sim_work
 * descriptor unless explicitly allowed to differ.
 */

#ifndef TT_STREAM_BUILDER_HH
#define TT_STREAM_BUILDER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "stream/task_graph.hh"

namespace tt::stream {

/** Declarative description of one memory-compute pair. */
struct PairSpec
{
    /** Host work of the memory task (gather and/or scatter loops). */
    std::function<void()> host_memory;

    /** Host work of the compute task (kernel over cached data). */
    std::function<void()> host_compute;

    /** Bytes the memory task streams through DRAM (sim). */
    std::uint64_t bytes = 0;

    /** Fraction of those bytes that are scatter (write) traffic. */
    double write_fraction = 0.0;

    /** Cycles the compute task burns on LLC-resident data (sim). */
    std::uint64_t compute_cycles = 0;

    /**
     * LLC bytes the pair occupies while in flight (sim); defaults to
     * `bytes` when left zero.
     */
    std::uint64_t footprint_bytes = 0;
};

/** Builder producing a validated TaskGraph. */
class StreamProgramBuilder
{
  public:
    /**
     * @param uniform_pairs when true (the default, matching the
     *        paper's equal-task-size requirement) every pair added to
     *        one phase must have the same sim resource descriptor.
     */
    explicit StreamProgramBuilder(bool uniform_pairs = true);

    /** Start a new barrier-separated phase. */
    PhaseId beginPhase(std::string name);

    /** Add one pair to the current phase; returns its pair id. */
    PairId addPair(PairSpec spec);

    /**
     * Add `count` identical pairs built by a factory receiving the
     * pair index within the phase; convenience for data parallelism.
     */
    void addPairs(int count,
                  const std::function<PairSpec(int)> &factory);

    /** Extra intra-phase dependency between two pairs' tasks. */
    void dependPairs(PairId before, PairId after);

    /** Finish: validates and returns the graph. */
    TaskGraph build() &&;

  private:
    TaskGraph graph_;
    bool uniform_pairs_;
    std::optional<SimWork> phase_shape_;
};

} // namespace tt::stream

#endif // TT_STREAM_BUILDER_HH
