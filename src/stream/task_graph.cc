#include "stream/task_graph.hh"

#include <queue>

#include "util/logging.hh"

namespace tt::stream {

PhaseId
TaskGraph::beginPhase(std::string name)
{
    Phase phase;
    phase.id = static_cast<PhaseId>(phases_.size());
    phase.name = std::move(name);
    phase.first_pair = pair_count_;
    phases_.push_back(std::move(phase));
    return phases_.back().id;
}

PairId
TaskGraph::addPair(Task memory_task, Task compute_task)
{
    tt_assert(!phases_.empty(),
              "call beginPhase() before adding pairs");
    tt_assert(memory_task.kind == TaskKind::Memory,
              "first task of a pair must be a memory task");
    tt_assert(compute_task.kind == TaskKind::Compute,
              "second task of a pair must be a compute task");

    const PairId pair = pair_count_++;
    const PhaseId phase = phases_.back().id;

    memory_task.id = static_cast<TaskId>(tasks_.size());
    memory_task.pair = pair;
    memory_task.phase = phase;
    tasks_.push_back(std::move(memory_task));
    pair_memory_.push_back(tasks_.back().id);

    compute_task.id = static_cast<TaskId>(tasks_.size());
    compute_task.pair = pair;
    compute_task.phase = phase;
    compute_task.deps.push_back(pair_memory_.back());
    tasks_.push_back(std::move(compute_task));
    pair_compute_.push_back(tasks_.back().id);

    ++phases_.back().pair_count;
    return pair;
}

void
TaskGraph::addDependency(TaskId before, TaskId after)
{
    tt_assert(before >= 0 && before < taskCount(), "bad dependency id");
    tt_assert(after >= 0 && after < taskCount(), "bad dependency id");
    tt_assert(tasks_[before].phase == tasks_[after].phase,
              "cross-phase dependencies are implicit barriers; "
              "explicit edges must stay within one phase");
    tasks_[after].deps.push_back(before);
}

const Task &
TaskGraph::task(TaskId id) const
{
    tt_assert(id >= 0 && id < taskCount(), "task id out of range");
    return tasks_[id];
}

const Phase &
TaskGraph::phase(PhaseId id) const
{
    tt_assert(id >= 0 && id < phaseCount(), "phase id out of range");
    return phases_[id];
}

TaskId
TaskGraph::memoryTaskOf(PairId pair) const
{
    tt_assert(pair >= 0 && pair < pair_count_, "pair id out of range");
    return pair_memory_[pair];
}

TaskId
TaskGraph::computeTaskOf(PairId pair) const
{
    tt_assert(pair >= 0 && pair < pair_count_, "pair id out of range");
    return pair_compute_[pair];
}

void
TaskGraph::validate() const
{
    // Pair structure.
    for (PairId p = 0; p < pair_count_; ++p) {
        const Task &mem = tasks_[pair_memory_[p]];
        const Task &cmp = tasks_[pair_compute_[p]];
        if (mem.kind != TaskKind::Memory || cmp.kind != TaskKind::Compute)
            tt_fatal("pair ", p, " has mismatched task kinds");
        if (mem.pair != p || cmp.pair != p)
            tt_fatal("pair ", p, " has inconsistent pair ids");
        bool has_partner_dep = false;
        for (TaskId d : cmp.deps)
            has_partner_dep |= (d == mem.id);
        if (!has_partner_dep)
            tt_fatal("compute task of pair ", p,
                     " does not depend on its memory task");
    }

    // Dependencies stay in-phase and the graph is acyclic (Kahn).
    std::vector<int> indegree(tasks_.size(), 0);
    std::vector<std::vector<TaskId>> succs(tasks_.size());
    for (const Task &task : tasks_) {
        for (TaskId d : task.deps) {
            if (d < 0 || d >= taskCount())
                tt_fatal("task ", task.id, " depends on bad id ", d);
            if (tasks_[d].phase != task.phase)
                tt_fatal("task ", task.id,
                         " has a cross-phase dependency on ", d);
            succs[d].push_back(task.id);
            ++indegree[task.id];
        }
    }
    std::queue<TaskId> ready;
    for (const Task &task : tasks_)
        if (indegree[task.id] == 0)
            ready.push(task.id);
    std::size_t visited = 0;
    while (!ready.empty()) {
        const TaskId id = ready.front();
        ready.pop();
        ++visited;
        for (TaskId succ : succs[id])
            if (--indegree[succ] == 0)
                ready.push(succ);
    }
    if (visited != tasks_.size())
        tt_fatal("task graph contains a dependency cycle");
}

} // namespace tt::stream
