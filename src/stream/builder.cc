#include "stream/builder.hh"

#include "util/logging.hh"

namespace tt::stream {

StreamProgramBuilder::StreamProgramBuilder(bool uniform_pairs)
    : uniform_pairs_(uniform_pairs)
{
}

PhaseId
StreamProgramBuilder::beginPhase(std::string name)
{
    phase_shape_.reset();
    return graph_.beginPhase(std::move(name));
}

PairId
StreamProgramBuilder::addPair(PairSpec spec)
{
    if (spec.footprint_bytes == 0)
        spec.footprint_bytes = spec.bytes;

    Task mem;
    mem.kind = TaskKind::Memory;
    mem.host_work = std::move(spec.host_memory);
    mem.sim_work.bytes = spec.bytes;
    mem.sim_work.write_fraction = spec.write_fraction;
    mem.sim_work.footprint_bytes = spec.footprint_bytes;

    Task cmp;
    cmp.kind = TaskKind::Compute;
    cmp.host_work = std::move(spec.host_compute);
    cmp.sim_work.compute_cycles = spec.compute_cycles;
    cmp.sim_work.footprint_bytes = spec.footprint_bytes;

    if (uniform_pairs_) {
        const SimWork shape{spec.bytes, spec.write_fraction,
                            spec.compute_cycles, spec.footprint_bytes};
        if (!phase_shape_) {
            phase_shape_ = shape;
        } else {
            const SimWork &ref = *phase_shape_;
            tt_assert(ref.bytes == shape.bytes &&
                          ref.compute_cycles == shape.compute_cycles &&
                          ref.footprint_bytes == shape.footprint_bytes,
                      "pairs within a phase must be equally sized "
                      "(stream programming guideline); construct the "
                      "builder with uniform_pairs=false to override");
        }
    }

    return graph_.addPair(std::move(mem), std::move(cmp));
}

void
StreamProgramBuilder::addPairs(int count,
                               const std::function<PairSpec(int)> &factory)
{
    tt_assert(count >= 0, "negative pair count");
    for (int i = 0; i < count; ++i)
        addPair(factory(i));
}

void
StreamProgramBuilder::dependPairs(PairId before, PairId after)
{
    graph_.addDependency(graph_.computeTaskOf(before),
                         graph_.memoryTaskOf(after));
}

TaskGraph
StreamProgramBuilder::build() &&
{
    graph_.validate();
    return std::move(graph_);
}

} // namespace tt::stream
