/**
 * @file
 * TaskGraph: the container for a stream program's tasks, pairs and
 * phases, with structural validation.
 */

#ifndef TT_STREAM_TASK_GRAPH_HH
#define TT_STREAM_TASK_GRAPH_HH

#include <string>
#include <vector>

#include "stream/task.hh"

namespace tt::stream {

/** A barrier-separated group of pairs with one workload behaviour. */
struct Phase
{
    PhaseId id = -1;
    std::string name;
    PairId first_pair = 0;  ///< index of the phase's first pair
    int pair_count = 0;     ///< pairs in this phase
};

/**
 * Immutable-after-build container of tasks.
 *
 * Invariants enforced by validate():
 *  - every pair has exactly one memory and one compute task;
 *  - the compute task depends (at least) on its memory partner;
 *  - dependencies stay within the task's own phase (phases are
 *    separated by implicit barriers);
 *  - the intra-phase dependency graph is acyclic.
 */
class TaskGraph
{
  public:
    /** Append a phase; subsequent pairs belong to it. */
    PhaseId beginPhase(std::string name);

    /**
     * Append one memory+compute pair to the current phase. Returns
     * the pair id. The compute->memory dependency is added
     * automatically.
     */
    PairId addPair(Task memory_task, Task compute_task);

    /** Add an extra intra-phase dependency: `after` waits on `before`. */
    void addDependency(TaskId before, TaskId after);

    /** Check all invariants; calls tt_fatal on violation. */
    void validate() const;

    const std::vector<Task> &tasks() const { return tasks_; }
    const Task &task(TaskId id) const;
    const std::vector<Phase> &phases() const { return phases_; }
    const Phase &phase(PhaseId id) const;

    int taskCount() const { return static_cast<int>(tasks_.size()); }
    int pairCount() const { return pair_count_; }
    int phaseCount() const { return static_cast<int>(phases_.size()); }

    /** Memory task id of a pair. */
    TaskId memoryTaskOf(PairId pair) const;
    /** Compute task id of a pair. */
    TaskId computeTaskOf(PairId pair) const;

    bool empty() const { return tasks_.empty(); }

  private:
    std::vector<Task> tasks_;
    std::vector<Phase> phases_;
    std::vector<TaskId> pair_memory_;
    std::vector<TaskId> pair_compute_;
    int pair_count_ = 0;
};

} // namespace tt::stream

#endif // TT_STREAM_TASK_GRAPH_HH
