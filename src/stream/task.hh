/**
 * @file
 * Task model for the gather-compute-scatter stream style (paper
 * Sec. II).
 *
 * An application is decomposed into *pairs*: one equally-sized
 * memory task (gather data from DRAM into the LLC, and/or scatter
 * results back) plus one compute task that then operates entirely on
 * LLC-resident data. Pairs are grouped into *phases* -- the unit at
 * which the paper's workloads change their memory-to-compute ratio
 * (e.g. SIFT's parallel functions, Table III).
 *
 * Every task can carry two alternative work payloads:
 *  - `host_work`: a closure executed by the real-thread runtime;
 *  - `sim_work`:  a resource descriptor (bytes to move, cycles to
 *    burn, LLC footprint) executed by the simulated machine.
 * Workloads populate both so the same TaskGraph runs everywhere.
 */

#ifndef TT_STREAM_TASK_HH
#define TT_STREAM_TASK_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace tt::stream {

using TaskId = std::int32_t;
using PairId = std::int32_t;
using PhaseId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;

/** A task either moves data (memory) or consumes cycles (compute). */
enum class TaskKind { Memory, Compute };

/** Resource descriptor consumed by the simulated machine. */
struct SimWork
{
    /** Bytes the memory task streams between DRAM and the LLC. */
    std::uint64_t bytes = 0;

    /** Fraction of the bytes that are writes (scatter traffic). */
    double write_fraction = 0.0;

    /** Core cycles a compute task burns when its data hits in LLC. */
    std::uint64_t compute_cycles = 0;

    /**
     * LLC bytes the pair's working set occupies while live; drives
     * the capacity-overflow behaviour of Fig. 13(c).
     */
    std::uint64_t footprint_bytes = 0;
};

/** One schedulable unit. */
struct Task
{
    TaskId id = kInvalidTask;
    TaskKind kind = TaskKind::Memory;
    PairId pair = -1;
    PhaseId phase = -1;

    /** Tasks that must complete before this one may start (within
     *  the same phase; phases themselves are barrier-separated). */
    std::vector<TaskId> deps;

    /** Real work for the thread runtime (may be empty). */
    std::function<void()> host_work;

    /** Abstract work for the simulator. */
    SimWork sim_work;
};

} // namespace tt::stream

#endif // TT_STREAM_TASK_HH
