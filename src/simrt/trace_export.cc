#include "simrt/trace_export.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tt::simrt {

namespace {

/** Escape a string for a JSON literal (names are simple, but be safe). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

void
writeChromeTrace(const stream::TaskGraph &graph, const RunResult &result,
                 std::ostream &os)
{
    os << "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    os << std::fixed << std::setprecision(3);

    // Context rows: one duration event per task.
    for (const TaskTrace &entry : result.trace) {
        sep();
        const std::string phase_name =
            entry.phase >= 0 && entry.phase < graph.phaseCount()
                ? graph.phase(entry.phase).name
                : "?";
        os << "  {\"ph\":\"X\",\"pid\":0,\"tid\":" << entry.context
           << ",\"name\":\"" << (entry.is_memory ? "M" : "C") << " pair"
           << entry.pair << "\",\"cat\":\""
           << (entry.is_memory ? "memory" : "compute")
           << "\",\"ts\":" << entry.start * 1e6
           << ",\"dur\":" << (entry.end - entry.start) * 1e6
           << ",\"args\":{\"phase\":\"" << jsonEscape(phase_name)
           << "\",\"mtl\":" << entry.mtl_at_dispatch << "}}";
    }

    // MTL counter track.
    for (const auto &[time, mtl] : result.mtl_trace) {
        sep();
        os << "  {\"ph\":\"C\",\"pid\":0,\"name\":\"MTL\",\"ts\":"
           << time * 1e6 << ",\"args\":{\"mtl\":" << mtl << "}}";
    }

    // Context naming metadata.
    int max_context = -1;
    for (const TaskTrace &entry : result.trace)
        max_context = std::max(max_context, entry.context);
    for (int context = 0; context <= max_context; ++context) {
        sep();
        os << "  {\"ph\":\"M\",\"pid\":0,\"tid\":" << context
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"context "
           << context << "\"}}";
    }

    os << "\n]\n";
}

std::string
chromeTraceString(const stream::TaskGraph &graph, const RunResult &result)
{
    std::ostringstream os;
    writeChromeTrace(graph, result, os);
    return os.str();
}

} // namespace tt::simrt
