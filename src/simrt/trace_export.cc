#include "simrt/trace_export.hh"

#include <sstream>

#include "obs/chrome_trace.hh"

namespace tt::simrt {

obs::TraceData
toTraceData(const stream::TaskGraph &graph, const RunResult &result)
{
    obs::TraceData data;
    data.events.reserve(result.trace.size());
    for (const TaskTrace &entry : result.trace) {
        obs::TaskEvent event;
        event.task = entry.task;
        event.pair = entry.pair;
        event.phase = entry.phase;
        event.is_memory = entry.is_memory;
        event.worker = entry.context;
        event.start = entry.start;
        event.end = entry.end;
        event.mtl = entry.mtl_at_dispatch;
        data.events.push_back(event);
    }
    data.mtl_trace = result.mtl_trace;
    data.decisions = result.decisions;
    data.phase_names.reserve(
        static_cast<std::size_t>(graph.phaseCount()));
    for (const stream::Phase &phase : graph.phases())
        data.phase_names.push_back(phase.name);
    return data;
}

void
writeChromeTrace(const stream::TaskGraph &graph, const RunResult &result,
                 std::ostream &os)
{
    obs::writeChromeTrace(toTraceData(graph, result), os);
}

std::string
chromeTraceString(const stream::TaskGraph &graph, const RunResult &result)
{
    std::ostringstream os;
    writeChromeTrace(graph, result, os);
    return os.str();
}

} // namespace tt::simrt
