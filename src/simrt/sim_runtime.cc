#include "simrt/sim_runtime.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/policy.hh"
#include "core/sample_guard.hh"
#include "fault/fault_plan.hh"
#include "obs/timeseries.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace tt::simrt {

using stream::Task;
using stream::TaskId;
using stream::TaskKind;

namespace {

sim::Tick
ticksFromSeconds(double seconds)
{
    return static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::kTicksPerSecond) + 0.5);
}

} // namespace

SimRuntime::SimRuntime(cpu::SimMachine &machine,
                       const stream::TaskGraph &graph,
                       core::SchedulingPolicy &policy)
    : machine_(machine), graph_(graph), policy_(policy)
{
    const auto n_tasks = static_cast<std::size_t>(graph_.taskCount());
    deps_left_.assign(n_tasks, 0);
    succs_.assign(n_tasks, {});
    task_start_.assign(n_tasks, 0);
    task_end_.assign(n_tasks, 0);
    pair_mem_mtl_.assign(static_cast<std::size_t>(graph_.pairCount()), 0);
    attempts_.assign(n_tasks, 0);
    attempt_start_.assign(n_tasks, 0);
    penalty_applied_.assign(n_tasks, 0);
    trace_index_.assign(n_tasks, -1);
    trace_.reserve(n_tasks);
    context_busy_.assign(static_cast<std::size_t>(machine_.contexts()),
                         false);
    for (const Task &task : graph_.tasks()) {
        deps_left_[static_cast<std::size_t>(task.id)] =
            static_cast<int>(task.deps.size());
        for (TaskId dep : task.deps)
            succs_[static_cast<std::size_t>(dep)].push_back(task.id);
    }
}

void
SimRuntime::activatePhase(int phase)
{
    current_phase_ = phase;
    phase_remaining_ = 0;
    for (const Task &task : graph_.tasks()) {
        if (task.phase != phase)
            continue;
        ++phase_remaining_;
        if (deps_left_[static_cast<std::size_t>(task.id)] == 0) {
            tt_assert(task.kind == TaskKind::Memory,
                      "only memory tasks can be initially ready");
            ready_memory_.push_back(task.id);
        }
    }
    tt_assert(phase_remaining_ > 0 || graph_.empty(),
              "phase ", phase, " has no tasks");
}

void
SimRuntime::setFaultPlan(const fault::FaultPlan *plan, int max_retries,
                         double backoff_seconds)
{
    tt_assert(max_retries >= 0, "retry budget cannot be negative");
    tt_assert(backoff_seconds >= 0.0, "backoff cannot be negative");
    fault_plan_ = plan;
    max_task_retries_ = max_retries;
    retry_backoff_seconds_ = backoff_seconds;
}

void
SimRuntime::setTimeseries(std::ostream *out, double interval_seconds)
{
    tt_assert(out == nullptr || interval_seconds > 0.0,
              "sampling interval must be positive");
    timeseries_out_ = out;
    timeseries_interval_seconds_ = interval_seconds;
}

void
SimRuntime::emitTimeseriesSample()
{
    obs::TimeseriesSample row;
    row.time = machine_.nowSeconds();
    row.mtl = policy_.currentMtl();
    row.mem_in_flight = mem_in_flight_;
    row.tasks_done = tasks_done_;
    row.pairs_done = static_cast<long>(samples_.size());
    row.ready_memory = ready_memory_.size();
    row.ready_compute = ready_compute_.size();
    row.selections = policy_.stats().selections;
    row.degraded = policy_.degraded();
    obs::writeTimeseriesRow(row, *timeseries_out_);

    // Keep sampling only while the schedule is live; the final
    // reschedule past the drain yields the closing snapshot.
    if (tasks_done_ < graph_.taskCount() && !failed_)
        machine_.events().scheduleIn(
            ticksFromSeconds(timeseries_interval_seconds_),
            [this] { emitTimeseriesSample(); });
}

void
SimRuntime::trySchedule()
{
    if (failed_)
        return; // aborting: let in-flight tasks drain, dispatch nothing
    while (true) {
        // Lowest-numbered idle context: fills distinct physical
        // cores before SMT siblings (see SimMachine::coreOf).
        int context = -1;
        for (int c = 0; c < machine_.contexts(); ++c) {
            if (!context_busy_[static_cast<std::size_t>(c)]) {
                context = c;
                break;
            }
        }
        if (context < 0)
            return;

        if (!ready_compute_.empty()) {
            const TaskId id = ready_compute_.front();
            ready_compute_.pop_front();
            dispatch(context, id);
            continue;
        }
        if (!ready_memory_.empty() &&
            mem_in_flight_ < policy_.currentMtl()) {
            const TaskId id = ready_memory_.front();
            ready_memory_.pop_front();
            dispatch(context, id);
            continue;
        }
        return;
    }
}

void
SimRuntime::dispatch(int context, TaskId id)
{
    const Task &task = graph_.task(id);
    context_busy_[static_cast<std::size_t>(context)] = true;
    task_start_[static_cast<std::size_t>(id)] = machine_.events().now();
    attempt_start_[static_cast<std::size_t>(id)] = machine_.events().now();

    double miss_fraction = 0.0;
    if (task.kind == TaskKind::Memory) {
        ++mem_in_flight_;
        peak_mem_in_flight_ =
            std::max(peak_mem_in_flight_, mem_in_flight_);
        tt_assert(mem_in_flight_ <= policy_.currentMtl(),
                  "MTL restriction violated by the scheduler");
        pair_mem_mtl_[static_cast<std::size_t>(task.pair)] =
            policy_.currentMtl();
        // The pair's working set occupies the LLC from the moment
        // the prefetch stream starts filling it.
        machine_.mem().llc().install(task.sim_work.footprint_bytes);
    } else {
        miss_fraction = machine_.mem().llc().missFraction();
    }

    TaskTrace record;
    record.task = id;
    record.pair = task.pair;
    record.phase = task.phase;
    record.is_memory = task.kind == TaskKind::Memory;
    record.context = context;
    record.start = machine_.nowSeconds();
    record.mtl_at_dispatch = policy_.currentMtl();
    trace_index_[static_cast<std::size_t>(id)] =
        static_cast<int>(trace_.size());
    trace_.push_back(record);

    machine_.run(context, task, miss_fraction,
                 [this, context, id] { onTaskDone(context, id); });
}

void
SimRuntime::onTaskDone(int context, TaskId id)
{
    const Task &task = graph_.task(id);
    const bool inject = fault_plan_ != nullptr && fault_plan_->enabled();

    if (inject && penalty_applied_[static_cast<std::size_t>(id)] == 0) {
        const int attempt = attempts_[static_cast<std::size_t>(id)];
        const fault::TaskFaults faults =
            fault_plan_->forTask(id, attempt);
        if (faults.fail) {
            if (attempt >= max_task_retries_ || failed_) {
                failRun(id, attempt);
                context_busy_[static_cast<std::size_t>(context)] = false;
                return;
            }
            ++attempts_[static_cast<std::size_t>(id)];
            ++task_retries_;
            if (metrics_)
                metrics_->add("runtime.task_retries", 1);
            const double backoff =
                std::min(retry_backoff_seconds_ *
                             std::ldexp(1.0, attempt),
                         50e-3);
            machine_.events().scheduleIn(
                ticksFromSeconds(backoff),
                [this, context, id] { retryTask(context, id); });
            return;
        }
        sim::Tick extra = 0;
        if (faults.stall)
            extra += ticksFromSeconds(fault_plan_->config().stall_seconds);
        if (faults.latency_factor > 1.0) {
            const sim::Tick elapsed =
                machine_.events().now() -
                attempt_start_[static_cast<std::size_t>(id)];
            extra += static_cast<sim::Tick>(
                static_cast<double>(elapsed) *
                (faults.latency_factor - 1.0));
        }
        if (extra > 0) {
            // Model the stall/straggler as extra completion latency:
            // re-enter once, flagged so the faults are not re-rolled.
            penalty_applied_[static_cast<std::size_t>(id)] = 1;
            machine_.events().scheduleIn(extra, [this, context, id] {
                onTaskDone(context, id);
            });
            return;
        }
    }
    penalty_applied_[static_cast<std::size_t>(id)] = 0;

    context_busy_[static_cast<std::size_t>(context)] = false;
    task_end_[static_cast<std::size_t>(id)] = machine_.events().now();
    trace_[static_cast<std::size_t>(
               trace_index_[static_cast<std::size_t>(id)])]
        .end = machine_.nowSeconds();
    ++tasks_done_;
    if (tasks_done_ == graph_.taskCount())
        drain_seconds_ = machine_.nowSeconds();

    if (task.kind == TaskKind::Memory) {
        --mem_in_flight_;
    } else {
        // Pair complete: release the footprint and report the sample.
        const stream::PairId pair = task.pair;
        const TaskId mem_id = graph_.memoryTaskOf(pair);
        machine_.mem().llc().release(
            graph_.task(mem_id).sim_work.footprint_bytes);

        core::PairSample sample;
        sample.tm = sim::toSeconds(
            task_end_[static_cast<std::size_t>(mem_id)] -
            task_start_[static_cast<std::size_t>(mem_id)]);
        sample.tc = sim::toSeconds(
            task_end_[static_cast<std::size_t>(id)] -
            task_start_[static_cast<std::size_t>(id)]);
        sample.end_time = machine_.nowSeconds();
        sample.mtl = pair_mem_mtl_[static_cast<std::size_t>(pair)];
        if (inject) {
            // Corruption models a broken clock read at measurement
            // time. Keyed by the compute task with attempt 0 so the
            // same pairs corrupt regardless of retry history -- and
            // identically on the host runtime.
            const fault::TaskFaults faults = fault_plan_->forTask(id, 0);
            if (faults.corrupt_sample) {
                sample.tm = fault_plan_->corruptValue(id, 0);
                sample.tc = fault_plan_->corruptValue(id, 1);
            }
        }
        samples_.push_back(sample);
        if (metrics_ && std::isfinite(sample.tm) &&
            std::isfinite(sample.tc)) {
            const std::string suffix =
                ".mtl=" + std::to_string(sample.mtl);
            metrics_->observe("runtime.tm_seconds" + suffix, sample.tm);
            metrics_->observe("runtime.tc_seconds" + suffix, sample.tc);
        }
        policy_.onPairMeasured(sample);
    }

    if (metrics_) {
        metrics_->observe(
            "runtime.ready_memory_depth",
            static_cast<double>(ready_memory_.size()),
            Histogram::Options{.min_value = 1.0, .growth = 2.0,
                               .buckets = 24});
        metrics_->observe(
            "runtime.ready_compute_depth",
            static_cast<double>(ready_compute_.size()),
            Histogram::Options{.min_value = 1.0, .growth = 2.0,
                               .buckets = 24});
    }

    // Unlock successors within the phase.
    for (TaskId succ : succs_[static_cast<std::size_t>(id)]) {
        if (--deps_left_[static_cast<std::size_t>(succ)] == 0) {
            if (graph_.task(succ).kind == TaskKind::Memory)
                ready_memory_.push_back(succ);
            else
                ready_compute_.push_back(succ);
        }
    }

    // Phase barrier.
    if (--phase_remaining_ == 0 &&
        current_phase_ + 1 < graph_.phaseCount()) {
        tt_assert(ready_memory_.empty() && ready_compute_.empty(),
                  "ready tasks left at a phase barrier");
        activatePhase(current_phase_ + 1);
    }

    trySchedule();
}

void
SimRuntime::retryTask(int context, TaskId id)
{
    if (failed_) {
        context_busy_[static_cast<std::size_t>(context)] = false;
        return;
    }
    const Task &task = graph_.task(id);
    attempt_start_[static_cast<std::size_t>(id)] = machine_.events().now();
    if (task.kind == TaskKind::Compute) {
        // Pair-granularity retry: re-gather before re-computing. The
        // pair's footprint is still LLC-resident (released only at
        // pair completion), so the re-run does not install it again.
        const Task &mem = graph_.task(graph_.memoryTaskOf(task.pair));
        machine_.run(context, mem, 0.0, [this, context, id] {
            machine_.run(context, graph_.task(id),
                         machine_.mem().llc().missFraction(),
                         [this, context, id] {
                             onTaskDone(context, id);
                         });
        });
        return;
    }
    machine_.run(context, task, 0.0,
                 [this, context, id] { onTaskDone(context, id); });
}

void
SimRuntime::failRun(TaskId id, int attempts)
{
    ++task_failures_;
    if (metrics_)
        metrics_->add("runtime.task_failures", 1);
    if (!failed_) {
        failed_ = true;
        failure_reason_ = "task " + std::to_string(id) +
                          " failed after " + std::to_string(attempts) +
                          " retries: injected fault";
        tt_warn("aborting simulated run: ", failure_reason_);
    }
}

RunResult
SimRuntime::run()
{
    RunResult result;
    if (graph_.empty()) {
        result.mtl_trace = policy_.mtlTrace();
        return result;
    }

    activatePhase(0);
    if (timeseries_out_ != nullptr)
        emitTimeseriesSample();
    trySchedule();
    machine_.events().run();

    tt_assert(failed_ || tasks_done_ == graph_.taskCount(),
              "simulation drained with ", tasks_done_, " of ",
              graph_.taskCount(), " tasks done (deadlock in graph or "
              "scheduler)");

    result.failed = failed_;
    result.failure_reason = failure_reason_;
    result.task_retries = task_retries_;
    result.task_failures = task_failures_;
    // With the sampler attached, the last event in the queue is a
    // trailing time-series snapshot; the makespan is the last task
    // completion, not that sampler tick.
    result.seconds = timeseries_out_ != nullptr && drain_seconds_ >= 0.0
                         ? drain_seconds_
                         : machine_.nowSeconds();
    result.samples = samples_;
    result.policy_stats = policy_.stats();
    result.mtl_trace = policy_.mtlTrace();
    result.decisions = policy_.decisions();

    // Same screening as the host runtime: corrupted samples stay in
    // result.samples but do not poison the averages.
    core::SampleGuard summary_guard;
    double tm_sum = 0.0;
    double tc_sum = 0.0;
    long clean = 0;
    for (const auto &sample : samples_) {
        if (!summary_guard.accept(sample))
            continue;
        tm_sum += sample.tm;
        tc_sum += sample.tc;
        ++clean;
    }
    if (clean > 0) {
        result.avg_tm = tm_sum / static_cast<double>(clean);
        result.avg_tc = tc_sum / static_cast<double>(clean);
    }
    if (!samples_.empty()) {
        result.monitor_overhead =
            static_cast<double>(result.policy_stats.probe_pairs) /
            static_cast<double>(samples_.size());
    }

    result.trace = trace_;
    result.peak_mem_in_flight = peak_mem_in_flight_;
    result.peak_llc_occupancy = machine_.mem().llc().peakOccupancy();
    result.dram_accesses = machine_.mem().totalAccesses();
    double util = 0.0;
    for (int c = 0; c < machine_.mem().channelCount(); ++c)
        util += machine_.mem().channel(c).busUtilisation();
    result.bus_utilisation =
        util / static_cast<double>(machine_.mem().channelCount());

    // Per-phase aggregates.
    for (const stream::Phase &phase : graph_.phases()) {
        RunResult::PhaseResult pr;
        pr.name = phase.name;
        double tm = 0.0;
        double tc = 0.0;
        sim::Tick start = std::numeric_limits<sim::Tick>::max();
        sim::Tick end = 0;
        for (int p = phase.first_pair;
             p < phase.first_pair + phase.pair_count; ++p) {
            const TaskId mem_id = graph_.memoryTaskOf(p);
            const TaskId cmp_id = graph_.computeTaskOf(p);
            tm += sim::toSeconds(
                task_end_[static_cast<std::size_t>(mem_id)] -
                task_start_[static_cast<std::size_t>(mem_id)]);
            tc += sim::toSeconds(
                task_end_[static_cast<std::size_t>(cmp_id)] -
                task_start_[static_cast<std::size_t>(cmp_id)]);
            start = std::min(start,
                             task_start_[static_cast<std::size_t>(mem_id)]);
            end = std::max(end,
                           task_end_[static_cast<std::size_t>(cmp_id)]);
        }
        if (phase.pair_count > 0) {
            pr.tm_mean = tm / phase.pair_count;
            pr.tc_mean = tc / phase.pair_count;
            pr.start = sim::toSeconds(start);
            pr.end = sim::toSeconds(end);
        }
        result.phases.push_back(std::move(pr));
    }

    if (metrics_) {
        metrics_->add("runtime.tasks_done", tasks_done_);
        metrics_->setMax("runtime.peak_mem_in_flight",
                         peak_mem_in_flight_);
        metrics_->set("runtime.makespan_seconds", result.seconds);
        metrics_->set("runtime.monitor_overhead",
                      result.monitor_overhead);
        metrics_->set("sim.dram_accesses",
                      static_cast<double>(result.dram_accesses));
        metrics_->set("sim.bus_utilisation", result.bus_utilisation);
        metrics_->set(
            "sim.peak_llc_occupancy_bytes",
            static_cast<double>(result.peak_llc_occupancy));
    }

    return result;
}

RunResult
runOnce(const cpu::MachineConfig &config, const stream::TaskGraph &graph,
        core::SchedulingPolicy &policy, MetricsRegistry *metrics)
{
    cpu::SimMachine machine(config);
    SimRuntime runtime(machine, graph, policy);
    runtime.bindMetrics(metrics);
    return runtime.run();
}

namespace {

std::string
violation(const char *what, stream::TaskId id)
{
    return std::string(what) + " (task " + std::to_string(id) + ")";
}

} // namespace

std::string
validateSchedule(const stream::TaskGraph &graph, const RunResult &result,
                 int contexts)
{
    const auto n_tasks = static_cast<std::size_t>(graph.taskCount());
    if (result.trace.size() != n_tasks)
        return "trace has " + std::to_string(result.trace.size()) +
               " entries for " + std::to_string(graph.taskCount()) +
               " tasks";

    std::vector<int> runs(n_tasks, 0);
    for (const TaskTrace &entry : result.trace) {
        if (entry.task < 0 || entry.task >= graph.taskCount())
            return violation("trace entry with bad task id", entry.task);
        ++runs[static_cast<std::size_t>(entry.task)];
        if (entry.end < entry.start)
            return violation("task ends before it starts", entry.task);
        if (entry.context < 0 || entry.context >= contexts)
            return violation("task ran on a bad context", entry.task);
    }
    for (std::size_t id = 0; id < n_tasks; ++id)
        if (runs[id] != 1)
            return violation("task did not run exactly once",
                             static_cast<stream::TaskId>(id));

    // Index trace entries by task for dependency checks.
    std::vector<const TaskTrace *> by_task(n_tasks, nullptr);
    for (const TaskTrace &entry : result.trace)
        by_task[static_cast<std::size_t>(entry.task)] = &entry;

    // No overlap per hardware context.
    std::vector<std::vector<const TaskTrace *>> per_context(
        static_cast<std::size_t>(contexts));
    for (const TaskTrace &entry : result.trace)
        per_context[static_cast<std::size_t>(entry.context)].push_back(
            &entry);
    for (auto &entries : per_context) {
        std::sort(entries.begin(), entries.end(),
                  [](const TaskTrace *a, const TaskTrace *b) {
                      return a->start < b->start;
                  });
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (entries[i]->start < entries[i - 1]->end - 1e-12)
                return violation("two tasks overlap on one context",
                                 entries[i]->task);
        }
    }

    // MTL respected at every memory-task dispatch instant.
    for (const TaskTrace &entry : result.trace) {
        if (!entry.is_memory)
            continue;
        int concurrent = 0;
        for (const TaskTrace &other : result.trace) {
            if (!other.is_memory)
                continue;
            if (other.start <= entry.start + 1e-15 &&
                entry.start < other.end - 1e-15) {
                ++concurrent;
            }
            // A zero-length memory task that dispatched exactly at
            // this instant still occupied a slot; count it when it
            // is the task under test itself.
        }
        if (concurrent == 0)
            concurrent = 1; // entry itself had zero length
        if (concurrent > entry.mtl_at_dispatch)
            return violation("MTL exceeded at dispatch", entry.task);
    }

    // Dependencies and phase barriers.
    double prev_phase_end = 0.0;
    stream::PhaseId prev_phase = -1;
    for (const stream::Task &task : graph.tasks()) {
        const TaskTrace *entry =
            by_task[static_cast<std::size_t>(task.id)];
        for (stream::TaskId dep : task.deps) {
            const TaskTrace *dep_entry =
                by_task[static_cast<std::size_t>(dep)];
            if (entry->start < dep_entry->end - 1e-12)
                return violation("task started before its dependency",
                                 task.id);
        }
        (void)prev_phase_end;
        (void)prev_phase;
    }
    // Phase barrier: min start of phase p+1 >= max end of phase p.
    std::vector<double> phase_min_start(
        static_cast<std::size_t>(graph.phaseCount()), 1e300);
    std::vector<double> phase_max_end(
        static_cast<std::size_t>(graph.phaseCount()), 0.0);
    for (const TaskTrace &entry : result.trace) {
        auto &min_start =
            phase_min_start[static_cast<std::size_t>(entry.phase)];
        auto &max_end =
            phase_max_end[static_cast<std::size_t>(entry.phase)];
        min_start = std::min(min_start, entry.start);
        max_end = std::max(max_end, entry.end);
    }
    for (int p = 1; p < graph.phaseCount(); ++p) {
        if (phase_min_start[static_cast<std::size_t>(p)] <
            phase_max_end[static_cast<std::size_t>(p - 1)] - 1e-12) {
            return "phase " + std::to_string(p) +
                   " started before phase " + std::to_string(p - 1) +
                   " completed";
        }
    }

    return {};
}

OfflineSearchResult
offlineExhaustiveSearch(const cpu::MachineConfig &config,
                        const stream::TaskGraph &graph)
{
    OfflineSearchResult result;
    result.best_seconds = std::numeric_limits<double>::infinity();
    const int n = config.contexts();
    for (int k = 1; k <= n; ++k) {
        core::StaticMtlPolicy policy(k, n);
        const RunResult run = runOnce(config, graph, policy);
        result.seconds_per_mtl.push_back(run.seconds);
        if (run.seconds < result.best_seconds) {
            result.best_seconds = run.seconds;
            result.best_mtl = k;
        }
    }
    return result;
}

} // namespace tt::simrt
