#include "simrt/sim_runtime.hh"

#include <limits>

#include "core/policy.hh"

namespace tt::simrt {

RunResult
runOnce(const cpu::MachineConfig &config, const stream::TaskGraph &graph,
        core::SchedulingPolicy &policy, MetricsRegistry *metrics)
{
    cpu::SimMachine machine(config);
    exec::EngineOptions options;
    options.metrics = metrics;
    SimRuntime runtime(machine, graph, policy, options);
    return runtime.run();
}

OfflineSearchResult
offlineExhaustiveSearch(const cpu::MachineConfig &config,
                        const stream::TaskGraph &graph)
{
    OfflineSearchResult result;
    result.best_seconds = std::numeric_limits<double>::infinity();
    const int n = config.contexts();
    for (int k = 1; k <= n; ++k) {
        core::StaticMtlPolicy policy(k, n);
        const RunResult run = runOnce(config, graph, policy);
        result.seconds_per_mtl.push_back(run.seconds);
        if (run.seconds < result.best_seconds) {
            result.best_seconds = run.seconds;
            result.best_mtl = k;
        }
    }
    return result;
}

} // namespace tt::simrt
