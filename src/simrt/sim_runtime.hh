/**
 * @file
 * SimRuntime: the stream-task scheduler running on simulated time.
 *
 * A thin adapter: the MTL-gated scheduling state machine lives in
 * exec::Engine (shared with the real-thread runtime), and this class
 * merely binds it to a SimBackend over one cpu::SimMachine. The
 * scheduling rules the engine enforces are the ones the paper
 * prototypes (Sec. V):
 *
 *  - phases are barrier-separated; a phase's tasks unlock only when
 *    the previous phase fully completes;
 *  - an idle context first takes any ready compute task (compute is
 *    never throttled -- "the application thread itself does not have
 *    to stall if it has compute work to do");
 *  - otherwise it takes the next ready memory task, provided the
 *    number of in-flight memory tasks is below the policy's current
 *    MTL.
 *
 * Every finished pair is reported to the policy as a PairSample, so
 * the adaptive policies observe exactly what they would observe on
 * the real machine. Configuration (metrics, fault plan, retries,
 * watchdog, time series) comes in through the same
 * exec::EngineOptions the host runtime takes; RunResult is an alias
 * of the unified exec::RunResult.
 */

#ifndef TT_SIMRT_SIM_RUNTIME_HH
#define TT_SIMRT_SIM_RUNTIME_HH

#include "cpu/sim_machine.hh"
#include "exec/engine.hh"
#include "simrt/sim_backend.hh"

namespace tt::simrt {

/** Everything measured during one simulated run (unified result). */
using RunResult = exec::RunResult;

/** See exec::toTraceData. */
using exec::toTraceData;

/** See exec::validateSchedule. */
using exec::validateSchedule;

/** Scheduler binding one graph + one policy to one machine. */
class SimRuntime
{
  public:
    /**
     * `options` configures the shared engine: `metrics` publishes
     * the same "runtime.*" series as the host runtime (plus the
     * simulator-only "sim.*" gauges), `fault_plan` mirrors the host
     * fault semantics on simulated time, `watchdog_seconds` is a
     * *simulated-time* deadline that fails the run in-band, and
     * `timeseries_out` samples on simulated time. `threads` and
     * `pin_affinity` are ignored -- the machine's hardware contexts
     * define the worker pool. `counters` must be an
     * obs::perf::SimCounterProvider to take effect (hardware
     * providers cannot observe simulated time and are ignored).
     */
    SimRuntime(cpu::SimMachine &machine, const stream::TaskGraph &graph,
               core::SchedulingPolicy &policy,
               exec::EngineOptions options = {})
        : options_(options),
          backend_(machine, graph, options_.metrics,
                   dynamic_cast<obs::perf::SimCounterProvider *>(
                       options_.counters)),
          engine_(graph, policy, options_)
    {
    }

    SimRuntime(const SimRuntime &) = delete;
    SimRuntime &operator=(const SimRuntime &) = delete;

    /** Execute the whole graph; callable once. */
    RunResult run() { return engine_.run(backend_); }

  private:
    exec::EngineOptions options_;
    SimBackend backend_;
    exec::Engine engine_;
};

/**
 * Run `graph` once on a fresh machine built from `config`. When
 * `metrics` is non-null the run publishes into it.
 */
RunResult runOnce(const cpu::MachineConfig &config,
                  const stream::TaskGraph &graph,
                  core::SchedulingPolicy &policy,
                  MetricsRegistry *metrics = nullptr);

/** Result of the paper's Offline Exhaustive Search baseline. */
struct OfflineSearchResult
{
    int best_mtl = 1;
    double best_seconds = 0.0;
    /** seconds_per_mtl[k-1] = makespan under static MTL=k. */
    std::vector<double> seconds_per_mtl;
};

/**
 * Offline Exhaustive Search (Sec. V): run the whole program once per
 * static MTL in [1, contexts] and keep the fastest.
 */
OfflineSearchResult offlineExhaustiveSearch(
    const cpu::MachineConfig &config, const stream::TaskGraph &graph);

} // namespace tt::simrt

#endif // TT_SIMRT_SIM_RUNTIME_HH
