/**
 * @file
 * SimRuntime: the stream-task scheduler running on simulated time.
 *
 * Mirrors the application-layer runtime the paper prototypes
 * (Sec. V): a work queue drained by one software thread per hardware
 * context, with the MTL restriction enforced by a counter at dequeue
 * time. Scheduling rules:
 *
 *  - phases are barrier-separated; a phase's tasks unlock only when
 *    the previous phase fully completes;
 *  - an idle context first takes any ready compute task (compute is
 *    never throttled -- "the application thread itself does not have
 *    to stall if it has compute work to do");
 *  - otherwise it takes the next ready memory task, provided the
 *    number of in-flight memory tasks is below the policy's current
 *    MTL.
 *
 * Every finished pair is reported to the policy as a PairSample, so
 * the adaptive policies observe exactly what they would observe on
 * the real machine.
 */

#ifndef TT_SIMRT_SIM_RUNTIME_HH
#define TT_SIMRT_SIM_RUNTIME_HH

#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.hh"
#include "cpu/sim_machine.hh"
#include "stream/task_graph.hh"

namespace tt {
class MetricsRegistry;
}

namespace tt::fault {
class FaultPlan;
}

namespace tt::simrt {

/** One task execution recorded in the schedule trace. */
struct TaskTrace
{
    stream::TaskId task = stream::kInvalidTask;
    stream::PairId pair = -1;
    stream::PhaseId phase = -1;
    bool is_memory = false;
    int context = -1;      ///< hardware context that ran the task
    double start = 0.0;    ///< dispatch time, seconds
    double end = 0.0;      ///< completion time, seconds
    int mtl_at_dispatch = 0; ///< policy MTL when the task started
};

/** Everything measured during one simulated run. */
struct RunResult
{
    double seconds = 0.0; ///< makespan of the whole graph

    /** One sample per completed pair, in completion order. */
    std::vector<core::PairSample> samples;

    core::PolicyStats policy_stats;
    std::vector<std::pair<double, int>> mtl_trace;

    /** Policy decision audit log (see core/audit.hh). */
    std::vector<core::MtlDecision> decisions;

    double avg_tm = 0.0; ///< mean memory-task duration
    double avg_tc = 0.0; ///< mean compute-task duration

    std::uint64_t dram_accesses = 0;
    double bus_utilisation = 0.0; ///< mean across channels

    /** Fraction of pairs consumed while probing candidate MTLs. */
    double monitor_overhead = 0.0;

    /** Peak number of concurrently executing memory tasks. */
    int peak_mem_in_flight = 0;

    /** Peak LLC occupancy observed (bytes). */
    std::uint64_t peak_llc_occupancy = 0;

    /** Full schedule trace in dispatch order. */
    std::vector<TaskTrace> trace;

    /** Per-phase aggregates (phase order). */
    struct PhaseResult
    {
        std::string name;
        double tm_mean = 0.0;
        double tc_mean = 0.0;
        double start = 0.0; ///< first task start, seconds
        double end = 0.0;   ///< last task end, seconds
    };
    std::vector<PhaseResult> phases;

    /** Task attempts re-executed after an injected failure. */
    long task_retries = 0;

    /** Tasks abandoned after exhausting the retry budget. */
    long task_failures = 0;

    /** True when the run aborted instead of draining the graph. */
    bool failed = false;

    /** Human-readable cause when failed (empty otherwise). */
    std::string failure_reason;
};

/** Scheduler binding one graph + one policy to one machine. */
class SimRuntime
{
  public:
    SimRuntime(cpu::SimMachine &machine, const stream::TaskGraph &graph,
               core::SchedulingPolicy &policy);

    /**
     * Attach a metrics sink (not owned; nullptr detaches). Publishes
     * the same "runtime.*" series as the host runtime -- T_m/T_c per
     * MTL, ready-queue depths, mem_in_flight high-water -- plus the
     * simulator-only DRAM/bus/LLC gauges.
     */
    void bindMetrics(MetricsRegistry *metrics) { metrics_ = metrics; }

    /**
     * Attach a fault-injection plan (not owned; nullptr detaches).
     * Faults mirror the host runtime's semantics on simulated time:
     * an injected failure consumes the attempt and re-dispatches the
     * task after an exponential sim-time backoff (compute retries
     * re-run the pair's memory body first); a stall adds
     * stall_seconds of latency; a straggler multiplies the attempt's
     * elapsed time; a corrupted pair reports garbage PairSample
     * timings to the policy. Because the fault decisions hash
     * (seed, task, attempt), a seeded plan injects the same faults
     * here and on the real-thread runtime.
     */
    void setFaultPlan(const fault::FaultPlan *plan,
                      int max_retries = 3,
                      double backoff_seconds = 100e-6);

    /**
     * Attach a time-series sink (not owned; nullptr detaches): one
     * JSONL row (see obs/timeseries.hh) every `interval_seconds` of
     * *simulated* time while tasks remain, plus a final row after
     * the last completion. The trailing sampler event does not
     * extend the reported makespan.
     */
    void setTimeseries(std::ostream *out, double interval_seconds);

    /** Execute the whole graph; returns the measurements. */
    RunResult run();

  private:
    void activatePhase(int phase);
    void trySchedule();
    void dispatch(int context, stream::TaskId id);
    void onTaskDone(int context, stream::TaskId id);
    /** Re-execute `id` on `context` after an injected failure. */
    void retryTask(int context, stream::TaskId id);
    /** Abort the run: record the cause, stop dispatching. */
    void failRun(stream::TaskId id, int attempts);
    /** Emit one time-series row; self-reschedules while tasks remain. */
    void emitTimeseriesSample();

    cpu::SimMachine &machine_;
    const stream::TaskGraph &graph_;
    core::SchedulingPolicy &policy_;
    MetricsRegistry *metrics_ = nullptr;

    // Fault injection (see setFaultPlan).
    const fault::FaultPlan *fault_plan_ = nullptr;
    int max_task_retries_ = 3;
    double retry_backoff_seconds_ = 100e-6;
    std::vector<int> attempts_;          ///< failed attempts per task
    std::vector<sim::Tick> attempt_start_;
    std::vector<char> penalty_applied_;  ///< stall/straggler delay done
    long task_retries_ = 0;
    long task_failures_ = 0;
    bool failed_ = false;
    std::string failure_reason_;

    std::vector<int> deps_left_;
    std::vector<std::vector<stream::TaskId>> succs_;
    std::deque<stream::TaskId> ready_memory_;
    std::deque<stream::TaskId> ready_compute_;
    std::vector<bool> context_busy_;

    int mem_in_flight_ = 0;
    int peak_mem_in_flight_ = 0;
    int current_phase_ = -1;
    int phase_remaining_ = 0;
    int tasks_done_ = 0;

    // Per-task and per-pair measurement state.
    std::vector<sim::Tick> task_start_;
    std::vector<sim::Tick> task_end_;
    std::vector<int> pair_mem_mtl_;

    std::vector<core::PairSample> samples_;
    std::vector<TaskTrace> trace_;
    std::vector<int> trace_index_;

    // Time-series sampling (see setTimeseries).
    std::ostream *timeseries_out_ = nullptr;
    double timeseries_interval_seconds_ = 1e-3;
    double drain_seconds_ = -1.0; ///< last task completion time
};

/**
 * Run `graph` once on a fresh machine built from `config`. When
 * `metrics` is non-null the run publishes into it (see bindMetrics).
 */
RunResult runOnce(const cpu::MachineConfig &config,
                  const stream::TaskGraph &graph,
                  core::SchedulingPolicy &policy,
                  MetricsRegistry *metrics = nullptr);

/**
 * Check the structural invariants of a recorded schedule against its
 * graph:
 *  - every task ran exactly once, with end >= start;
 *  - no two tasks overlap on one hardware context;
 *  - at every memory-task dispatch instant, the number of memory
 *    tasks in flight (including the new one) is within the MTL the
 *    policy had published at that moment;
 *  - a compute task starts only after its dependencies finished;
 *  - phase barriers hold: no task of phase p+1 starts before every
 *    task of phase p ended.
 *
 * Returns an empty string when the schedule is valid, otherwise a
 * description of the first violation (for test diagnostics).
 */
std::string validateSchedule(const stream::TaskGraph &graph,
                             const RunResult &result, int contexts);

/** Result of the paper's Offline Exhaustive Search baseline. */
struct OfflineSearchResult
{
    int best_mtl = 1;
    double best_seconds = 0.0;
    /** seconds_per_mtl[k-1] = makespan under static MTL=k. */
    std::vector<double> seconds_per_mtl;
};

/**
 * Offline Exhaustive Search (Sec. V): run the whole program once per
 * static MTL in [1, contexts] and keep the fastest.
 */
OfflineSearchResult offlineExhaustiveSearch(
    const cpu::MachineConfig &config, const stream::TaskGraph &graph);

} // namespace tt::simrt

#endif // TT_SIMRT_SIM_RUNTIME_HH
