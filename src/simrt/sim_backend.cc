#include "simrt/sim_backend.hh"

#include <chrono>
#include <utility>

#include "fault/fault_plan.hh"
#include "mem/dram_config.hh"
#include "util/stats.hh"

namespace tt::simrt {

using stream::Task;
using stream::TaskKind;

namespace {

sim::Tick
ticksFromSeconds(double seconds)
{
    return static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::kTicksPerSecond) + 0.5);
}

} // namespace

SimBackend::SimBackend(cpu::SimMachine &machine,
                       const stream::TaskGraph &graph,
                       MetricsRegistry *metrics,
                       obs::perf::SimCounterProvider *counters)
    : machine_(machine), graph_(graph), metrics_(metrics),
      counters_(counters)
{
}

double
SimBackend::now() const
{
    return machine_.nowSeconds() - start_seconds_;
}

void
SimBackend::beginRun(exec::Engine &engine)
{
    ExecutionBackend::beginRun(engine);
    if (counters_ != nullptr)
        counters_->prepare(machine_.contexts());
    // Engine times are seconds from run start even when the machine's
    // clock is not at zero (e.g. a reused machine).
    start_seconds_ = machine_.nowSeconds();
}

void
SimBackend::startAttempt(int context, const exec::AttemptSpec &spec)
{
    const Task &task = graph_.task(spec.task);
    if (task.kind == TaskKind::Memory && spec.attempt == 0) {
        // The pair's working set occupies the LLC from the moment the
        // prefetch stream starts filling it. Retries re-use the still
        // resident footprint (released only at pair completion).
        machine_.mem().llc().install(task.sim_work.footprint_bytes);
    }
    if (spec.rerun_memory_first) {
        // Pair-granularity retry: re-gather before re-computing.
        const Task &mem = graph_.task(graph_.memoryTaskOf(task.pair));
        machine_.run(context, mem, 0.0, [this, context, spec] {
            runMainBody(context, spec);
        });
        return;
    }
    runMainBody(context, spec);
}

void
SimBackend::runMainBody(int context, const exec::AttemptSpec &spec)
{
    const Task &task = graph_.task(spec.task);
    const sim::Tick start_tick = machine_.events().now();
    const double miss_fraction =
        task.kind == TaskKind::Compute
            ? machine_.mem().llc().missFraction()
            : 0.0;
    // Lines the body will move through the LLC -- the full stream
    // for a memory task, the demand-fetched spill for compute (the
    // same rounding SimCore applies); this becomes the synthesized
    // llc_misses count.
    const std::uint64_t miss_lines =
        task.kind == TaskKind::Memory
            ? (task.sim_work.bytes + mem::kLineBytes - 1) /
                  mem::kLineBytes
            : static_cast<std::uint64_t>(
                  miss_fraction *
                  static_cast<double>(task.sim_work.footprint_bytes /
                                      mem::kLineBytes));
    machine_.run(context, task, miss_fraction,
                 [this, context, spec, start_tick, miss_lines] {
                     onBodyDone(context, spec, start_tick, miss_lines);
                 });
}

void
SimBackend::onBodyDone(int context, const exec::AttemptSpec &spec,
                       sim::Tick start_tick, std::uint64_t miss_lines)
{
    exec::AttemptOutcome out;
    out.start = sim::toSeconds(start_tick) - start_seconds_;

    if (spec.faults.fail) {
        out.failed = true;
        out.error =
            fault::InjectedFault(spec.task, spec.attempt).what();
        out.end = now();
        engine_->onAttemptDone(context, out);
        return;
    }

    // Model a stall/straggler as extra completion latency.
    sim::Tick extra = 0;
    if (spec.faults.stall)
        extra += ticksFromSeconds(spec.stall_seconds);
    if (spec.faults.latency_factor > 1.0) {
        const sim::Tick elapsed = machine_.events().now() - start_tick;
        extra += static_cast<sim::Tick>(
            static_cast<double>(elapsed) *
            (spec.faults.latency_factor - 1.0));
    }
    const Task &task = graph_.task(spec.task);
    const bool is_memory = task.kind == TaskKind::Memory;
    const std::uint64_t compute_cycles =
        is_memory ? 0 : task.sim_work.compute_cycles;
    auto deliver = [this, context, out, is_memory, miss_lines,
                    compute_cycles]() mutable {
        out.end = now();
        if (counters_ != nullptr) {
            // Fault penalties (stall, straggler) extend out.end and
            // therefore land in the synthesized stall cycles, just
            // as a stalled host thread would keep accruing them.
            obs::perf::SimAttemptObservation obs;
            obs.is_memory = is_memory;
            obs.miss_lines = miss_lines;
            obs.compute_cycles = compute_cycles;
            obs.elapsed_seconds = out.end - out.start;
            obs.clock_hz = machine_.config().core_ghz * 1e9;
            // Synthesis is the sim's analogue of a perf fd read:
            // charge its *wall* cost to the shared obs.overhead
            // schema so both backends report counter-read cost.
            const auto t0 = std::chrono::steady_clock::now();
            out.counters = counters_->creditAttempt(context, obs);
            out.has_counters = true;
            counter_read_ns_ += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }
        engine_->onAttemptDone(context, out);
    };
    if (extra > 0)
        machine_.events().scheduleIn(extra, std::move(deliver));
    else
        deliver();
}

SimBackend::TimerToken
SimBackend::after(double seconds, std::function<void()> fn)
{
    // EventId starts at 0; shift by one so 0 stays the "no timer"
    // sentinel of the backend contract.
    return machine_.events().scheduleIn(ticksFromSeconds(seconds),
                                        std::move(fn)) +
           1;
}

void
SimBackend::cancel(TimerToken token)
{
    if (token != 0)
        machine_.events().deschedule(token - 1);
}

void
SimBackend::drive(exec::Engine &engine)
{
    (void)engine;
    machine_.events().run();
}

void
SimBackend::pairCompleted(const stream::Task &memory_task)
{
    machine_.mem().llc().release(memory_task.sim_work.footprint_bytes);
}

void
SimBackend::finalize(exec::RunResult &result)
{
    result.peak_llc_occupancy = machine_.mem().llc().peakOccupancy();
    result.dram_accesses = machine_.mem().totalAccesses();
    double util = 0.0;
    for (int c = 0; c < machine_.mem().channelCount(); ++c)
        util += machine_.mem().channel(c).busUtilisation();
    result.bus_utilisation =
        util / static_cast<double>(machine_.mem().channelCount());

    if (metrics_) {
        metrics_->set("sim.dram_accesses",
                      static_cast<double>(result.dram_accesses));
        metrics_->set("sim.bus_utilisation", result.bus_utilisation);
        metrics_->set(
            "sim.peak_llc_occupancy_bytes",
            static_cast<double>(result.peak_llc_occupancy));
        metrics_->add("obs.overhead.counter_read_ns",
                      static_cast<std::int64_t>(counter_read_ns_));
    }
}

} // namespace tt::simrt
