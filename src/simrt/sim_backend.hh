/**
 * @file
 * SimBackend: the exec::Engine execution substrate backed by the
 * discrete-event machine model.
 *
 * Attempts execute as SimMachine task runs; the engine's one-shot
 * timers (retry backoff, watchdog deadline, time-series sampling)
 * map onto event-queue entries, so every engine feature -- including
 * the watchdog -- operates on *simulated* time. Being single-
 * threaded, a fired sim watchdog fails the run in-band instead of
 * terminating the process.
 */

#ifndef TT_SIMRT_SIM_BACKEND_HH
#define TT_SIMRT_SIM_BACKEND_HH

#include "cpu/sim_machine.hh"
#include "exec/engine.hh"
#include "obs/perf/sim_counter_provider.hh"
#include "stream/task_graph.hh"

namespace tt {
class MetricsRegistry;
}

namespace tt::simrt {

/** Simulated-machine execution backend. */
class SimBackend final : public exec::ExecutionBackend
{
  public:
    /**
     * References are borrowed and must outlive the backend. When
     * `counters` is non-null, every attempt body is credited with a
     * synthesized CounterSet (see obs/perf/sim_counter_provider.hh)
     * delivered through AttemptOutcome -- the sim analogue of the
     * host backend's per-thread perf reads.
     */
    SimBackend(cpu::SimMachine &machine, const stream::TaskGraph &graph,
               MetricsRegistry *metrics,
               obs::perf::SimCounterProvider *counters = nullptr);

    int contexts() const override { return machine_.contexts(); }
    double now() const override;
    void beginRun(exec::Engine &engine) override;
    void startAttempt(int context,
                      const exec::AttemptSpec &spec) override;
    TimerToken after(double seconds,
                     std::function<void()> fn) override;
    void cancel(TimerToken token) override;
    void drive(exec::Engine &engine) override;
    void pairCompleted(const stream::Task &memory_task) override;
    void finalize(exec::RunResult &result) override;

  private:
    /** Run the attempt's own task body (after any memory re-run). */
    void runMainBody(int context, const exec::AttemptSpec &spec);
    /** Body finished: realize fail/stall/straggler faults, deliver.
     *  `miss_lines` is the LLC-miss line count the body modelled. */
    void onBodyDone(int context, const exec::AttemptSpec &spec,
                    sim::Tick start_tick, std::uint64_t miss_lines);

    cpu::SimMachine &machine_;
    const stream::TaskGraph &graph_;
    MetricsRegistry *metrics_ = nullptr;
    obs::perf::SimCounterProvider *counters_ = nullptr;
    double start_seconds_ = 0.0; ///< sim clock at beginRun()
    /** Wall ns spent synthesizing counters (obs.overhead.*). */
    std::uint64_t counter_read_ns_ = 0;
};

} // namespace tt::simrt

#endif // TT_SIMRT_SIM_BACKEND_HH
