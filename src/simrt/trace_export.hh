/**
 * @file
 * Schedule-trace export in the Chrome trace-event format.
 *
 * The rendering itself lives in obs::writeChromeTrace so host and
 * simulated runs share one exporter; this header adapts a simulated
 * RunResult (and its graph's phase names) into the runtime-agnostic
 * obs::TraceData. The emitted JSON loads into chrome://tracing or
 * Perfetto: one row per hardware context with its memory (M) and
 * compute (C) task slices, plus a counter track of the policy's MTL
 * over time -- which makes throttling decisions and phase adaptation
 * literally visible. `ttsim --trace-out out.json` produces one.
 */

#ifndef TT_SIMRT_TRACE_EXPORT_HH
#define TT_SIMRT_TRACE_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/trace.hh"
#include "simrt/sim_runtime.hh"
#include "stream/task_graph.hh"

namespace tt::simrt {

/**
 * Adapt a simulated run's schedule trace + MTL log + phase names
 * into the shared exporter's input.
 */
obs::TraceData toTraceData(const stream::TaskGraph &graph,
                           const RunResult &result);

/**
 * Write `result`'s schedule as Chrome trace events. Durations are in
 * microseconds of simulated time. Phase names come from `graph`.
 */
void writeChromeTrace(const stream::TaskGraph &graph,
                      const RunResult &result, std::ostream &os);

/** Convenience: render to a string (used by tests). */
std::string chromeTraceString(const stream::TaskGraph &graph,
                              const RunResult &result);

} // namespace tt::simrt

#endif // TT_SIMRT_TRACE_EXPORT_HH
