#include "runtime/host_backend.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <vector>

#include "fault/fault_plan.hh"
#include "obs/perf/counters.hh"
#include "util/logging.hh"
#include "util/stats.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tt::runtime {

using stream::Task;
using stream::TaskKind;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Pin the calling thread; false when the platform refused. */
bool
pinToCpu(int index)
{
#if defined(__linux__)
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(index) % hw, &set);
    // Best effort: failure (e.g. restricted cgroup) is not fatal,
    // but the caller records it so affinity-less runs are visible.
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
#else
    (void)index;
    return true;
#endif
}

} // namespace

HostThreadBackend::HostThreadBackend(const stream::TaskGraph &graph,
                                     const exec::EngineOptions &options)
    : graph_(graph), options_(options)
{
    tt_assert(options_.threads >= 1, "need at least one worker thread");
}

double
HostThreadBackend::now() const
{
    return nowSeconds() - run_start_;
}

void
HostThreadBackend::beginRun(exec::Engine &engine)
{
    ExecutionBackend::beginRun(engine);
    if (options_.counters != nullptr)
        options_.counters->prepare(options_.threads);
    run_start_ = nowSeconds();
}

void
HostThreadBackend::startAttempt(int context,
                                const exec::AttemptSpec &spec)
{
    // Pull mode: workers fetch their own work via Engine::nextAttempt,
    // so the engine must never push an attempt at this backend.
    (void)context;
    (void)spec;
    tt_assert(false, "startAttempt called on a pull-mode backend");
}

HostThreadBackend::TimerToken
HostThreadBackend::after(double seconds, std::function<void()> fn)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(seconds, 0.0)));
    TimerToken token = 0;
    {
        std::lock_guard lock(timer_mutex_);
        token = next_timer_++;
        timers_.emplace(token, Timer{deadline, std::move(fn)});
    }
    timer_cv_.notify_all();
    return token;
}

void
HostThreadBackend::cancel(TimerToken token)
{
    std::lock_guard lock(timer_mutex_);
    timers_.erase(token);
}

void
HostThreadBackend::drive(exec::Engine &engine)
{
    (void)engine;
    std::thread timer([this] { timerLoop(); });
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(options_.threads));
    for (int w = 0; w < options_.threads; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
    for (auto &worker : workers)
        worker.join();
    {
        // Lock-acquire so the timer thread cannot miss the notify
        // between its stop_ check and its wait.
        std::lock_guard lock(timer_mutex_);
    }
    timer_cv_.notify_all();
    timer.join();
}

void
HostThreadBackend::runDrained()
{
    // Workers park inside Engine::nextAttempt; the engine wakes them
    // itself when run_complete_ flips. Only the timer thread is ours.
    stop_.store(true, std::memory_order_relaxed);
    {
        std::lock_guard lock(timer_mutex_);
    }
    timer_cv_.notify_all();
}

long
HostThreadBackend::pinFailures() const
{
    return pin_failures_.load(std::memory_order_relaxed);
}

void
HostThreadBackend::finalize(exec::RunResult &result)
{
    (void)result;
    // Charge the per-attempt counter-read bracketing to the shared
    // obs.overhead schema (the engine already materialized the name
    // with a zero-delta add).
    if (options_.metrics != nullptr)
        options_.metrics->add(
            "obs.overhead.counter_read_ns",
            static_cast<std::int64_t>(
                counter_read_ns_.load(std::memory_order_relaxed)));
}

void
HostThreadBackend::workerLoop(int index)
{
    if (options_.pin_affinity && !pinToCpu(index)) {
        pin_failures_.fetch_add(1, std::memory_order_relaxed);
        std::call_once(pin_warn_once_, [] {
            tt_warn("pthread_setaffinity_np failed; workers run "
                    "unpinned (results may be noisier)");
        });
    }

    // Counter fds are per-thread state: open them here (on the
    // monitored thread itself) and close them on every exit path.
    obs::perf::CounterProvider *counters = options_.counters;
    if (counters != nullptr)
        counters->attachWorker(index);
    struct Detach
    {
        obs::perf::CounterProvider *counters;
        int index;
        ~Detach()
        {
            if (counters != nullptr)
                counters->detachWorker(index);
        }
    } detach{counters, index};

    // Lock-free fast path: nextAttempt pops the ready rings and takes
    // the sharded MTL gate; onAttemptDone completes memory attempts
    // without the scheduler mutex. The worker blocks (parked inside
    // the engine) only when there is genuinely nothing runnable.
    exec::AttemptSpec spec;
    while (engine_->nextAttempt(index, spec)) {
        const exec::AttemptOutcome outcome = runAttempt(index, spec);
        engine_->onAttemptDone(index, outcome);
    }
}

exec::AttemptOutcome
HostThreadBackend::runAttempt(int index, const exec::AttemptSpec &spec)
{
    exec::AttemptOutcome out;
    const Task &task = graph_.task(spec.task);
    // Bracket exactly what the timestamps bracket: the attempt body
    // (including injected stalls), not the pair-retry re-gather.
    obs::perf::CounterProvider *counters = options_.counters;
    const bool counting = counters != nullptr && counters->available();
    try {
        if (spec.rerun_memory_first) {
            // Pair-granularity retry: the compute body consumes data
            // its memory partner gathered, and the failed attempt may
            // have clobbered it mid-flight. Re-execute the memory
            // body first so the retry sees a freshly gathered pair.
            const Task &mem =
                graph_.task(graph_.memoryTaskOf(task.pair));
            if (mem.host_work)
                mem.host_work();
        }
        obs::perf::CounterSet before;
        if (counting) {
            const auto t0 = std::chrono::steady_clock::now();
            before = counters->read(index);
            counter_read_ns_.fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()),
                std::memory_order_relaxed);
        }
        out.start = now();
        if (spec.faults.stall)
            sleepSeconds(spec.stall_seconds);
        if (spec.faults.fail)
            throw fault::InjectedFault(spec.task, spec.attempt);
        if (task.host_work)
            task.host_work();
        if (spec.faults.latency_factor > 1.0) {
            const double elapsed = now() - out.start;
            sleepSeconds(elapsed * (spec.faults.latency_factor - 1.0));
        }
        out.end = now();
        if (counting) {
            const auto t0 = std::chrono::steady_clock::now();
            out.counters = counters->read(index) - before;
            out.has_counters = true;
            counter_read_ns_.fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()),
                std::memory_order_relaxed);
        }
    } catch (const std::exception &error) {
        out.failed = true;
        out.error = error.what();
        out.end = now();
    } catch (...) {
        out.failed = true;
        out.error = "non-standard exception";
        out.end = now();
    }
    return out;
}

void
HostThreadBackend::sleepSeconds(double seconds)
{
    // Chunked so stalled/straggling workers notice a failed run (or
    // simply finish) within ~10 ms instead of sleeping the full span.
    const double deadline = nowSeconds() + seconds;
    while (!engine_->runFailed()) {
        const double left = deadline - nowSeconds();
        if (left <= 0.0)
            return;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(left, 10e-3)));
    }
}

void
HostThreadBackend::timerLoop()
{
    std::unique_lock lock(timer_mutex_);
    while (!stop_.load(std::memory_order_relaxed)) {
        if (timers_.empty()) {
            timer_cv_.wait(lock);
            continue;
        }
        auto best = timers_.begin();
        for (auto it = std::next(best); it != timers_.end(); ++it)
            if (it->second.deadline < best->second.deadline)
                best = it;
        const auto deadline = best->second.deadline;
        if (std::chrono::steady_clock::now() < deadline) {
            // Wakes early on new timers, cancellations and stop; the
            // loop re-derives the earliest deadline each pass.
            timer_cv_.wait_until(lock, deadline);
            continue;
        }
        std::function<void()> fn = std::move(best->second.fn);
        timers_.erase(best);
        lock.unlock();
        fn();
        lock.lock();
    }
}

} // namespace tt::runtime
