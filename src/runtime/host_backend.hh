/**
 * @file
 * HostThreadBackend: the exec::Engine execution substrate backed by
 * real worker threads and the steady clock.
 *
 * One software thread per configured context, pinned with CPU
 * affinity where the platform supports it. This backend runs in the
 * engine's *pull* mode: each worker loops on Engine::nextAttempt()
 * -- lock-free ready rings and sharded MTL admission, no scheduler
 * mutex on the per-task path -- executes the body, and reports
 * through Engine::onAttemptDone(). A dedicated timer thread services
 * the engine's one-shot timers (retry backoff, watchdog deadline,
 * time-series sampling).
 */

#ifndef TT_RUNTIME_HOST_BACKEND_HH
#define TT_RUNTIME_HOST_BACKEND_HH

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>

#include "exec/engine.hh"
#include "stream/task_graph.hh"

namespace tt::runtime {

/** Real-thread execution backend (the paper's prototype, Sec. V). */
class HostThreadBackend final : public exec::ExecutionBackend
{
  public:
    /** Both references are borrowed and must outlive the backend. */
    HostThreadBackend(const stream::TaskGraph &graph,
                      const exec::EngineOptions &options);

    int contexts() const override { return options_.threads; }
    double now() const override;
    void beginRun(exec::Engine &engine) override;
    void startAttempt(int context,
                      const exec::AttemptSpec &spec) override;
    TimerToken after(double seconds,
                     std::function<void()> fn) override;
    void cancel(TimerToken token) override;
    void drive(exec::Engine &engine) override;
    void runDrained() override;
    long pinFailures() const override;
    void finalize(exec::RunResult &result) override;

    /** Wedged worker threads cannot be unwound: the watchdog must
     *  exit the process after dumping diagnostics. */
    bool watchdogTerminatesProcess() const override { return true; }

    /** Workers pull from the engine's lock-free rings. */
    bool pullDispatch() const override { return true; }

  private:
    struct Timer
    {
        std::chrono::steady_clock::time_point deadline;
        std::function<void()> fn;
    };

    void workerLoop(int index);
    void timerLoop();
    /** Execute one attempt body with its injected faults (no locks);
     *  `index` identifies the worker for counter attribution. */
    exec::AttemptOutcome runAttempt(int index,
                                    const exec::AttemptSpec &spec);
    /** Interruptible sleep used by stalls, stragglers and backoff. */
    void sleepSeconds(double seconds);

    const stream::TaskGraph &graph_;
    const exec::EngineOptions &options_;

    std::atomic<bool> stop_{false};
    std::atomic<long> pin_failures_{0};
    /** Wall ns spent inside counter reads (obs.overhead.*). */
    std::atomic<std::uint64_t> counter_read_ns_{0};
    std::once_flag pin_warn_once_;

    std::mutex timer_mutex_;
    std::condition_variable timer_cv_;
    std::map<TimerToken, Timer> timers_;
    TimerToken next_timer_ = 1; ///< 0 is the "no timer" sentinel

    double run_start_ = 0.0; ///< steady-clock origin, seconds
};

} // namespace tt::runtime

#endif // TT_RUNTIME_HOST_BACKEND_HH
