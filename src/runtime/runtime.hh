/**
 * @file
 * Real-thread stream-task runtime (the paper's prototype, Sec. V).
 *
 * The main thread enqueues every memory and compute task of the
 * graph with their dependencies, then spawns one software thread per
 * hardware context (pinned with CPU affinity where the platform
 * supports it). Workers dequeue tasks under a single lock; a counter
 * under the same lock enforces the MTL restriction -- exactly the
 * "lock and a counter" mechanism the paper describes. Every finished
 * pair is timed with the steady clock and reported to the policy, so
 * DynamicThrottlePolicy and friends behave identically here and on
 * the simulated machine.
 *
 * Scheduling rules match simrt::SimRuntime: barrier-separated
 * phases, compute-first dispatch, memory dispatch gated by
 * policy.currentMtl().
 */

#ifndef TT_RUNTIME_RUNTIME_HH
#define TT_RUNTIME_RUNTIME_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "core/policy.hh"
#include "obs/trace.hh"
#include "stream/task_graph.hh"

namespace tt {
class MetricsRegistry;
}

namespace tt::runtime {

/** Options controlling the worker pool. */
struct RuntimeOptions
{
    /** Worker threads (= hardware contexts, the model's n). */
    int threads = 1;

    /** Pin worker i to CPU i % hw_cpus (Linux only; no-op elsewhere). */
    bool pin_affinity = true;

    /**
     * Per-worker event-trace ring capacity. The rings are sized to
     * min(trace_capacity, task count), so the default traces every
     * task of any reasonable graph; shrink it to bound memory on
     * huge graphs (the oldest events are then dropped and counted).
     */
    std::size_t trace_capacity = 1 << 16;

    /**
     * Optional metrics sink (not owned). When set, the runtime
     * publishes "runtime.*" counters/gauges/histograms: T_m and T_c
     * per MTL, ready-queue depths, the mem_in_flight high-water
     * mark, pin failures. Bind the same registry to the policy to
     * get the "policy.*" series alongside.
     */
    MetricsRegistry *metrics = nullptr;
};

/** Measurements from one host run. */
struct HostRunResult
{
    double seconds = 0.0;
    std::vector<core::PairSample> samples;
    core::PolicyStats policy_stats;
    std::vector<std::pair<double, int>> mtl_trace;
    double avg_tm = 0.0;
    double avg_tc = 0.0;
    double monitor_overhead = 0.0;

    /** Peak number of concurrently executing memory tasks observed. */
    int peak_mem_in_flight = 0;

    /** Merged per-worker event trace, ordered by start time. */
    std::vector<obs::TaskEvent> trace;

    /** Events lost to trace-ring overwrites (0 unless capped). */
    std::uint64_t trace_dropped = 0;

    /** Workers whose CPU-affinity pin failed (0 when pinning is off). */
    long pin_failures = 0;
};

/**
 * Couple a host run's event trace with the policy's MTL transition
 * log and the graph's phase names, ready for obs::writeChromeTrace.
 */
obs::TraceData toTraceData(const stream::TaskGraph &graph,
                           const HostRunResult &result);

/** Thread-pool scheduler enforcing the MTL restriction. */
class Runtime
{
  public:
    Runtime(const stream::TaskGraph &graph,
            core::SchedulingPolicy &policy, RuntimeOptions options);

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Execute the graph to completion; callable once. */
    HostRunResult run();

  private:
    void workerLoop(int worker_index);
    /** Under lock: next runnable task id, or kInvalidTask. */
    stream::TaskId pickLocked();
    /** Under lock: post-completion bookkeeping. */
    void completeLocked(stream::TaskId id, double start, double end);
    void activatePhaseLocked(int phase);

    const stream::TaskGraph &graph_;
    core::SchedulingPolicy &policy_;
    RuntimeOptions options_;

    std::mutex mutex_;
    std::condition_variable cv_;

    std::vector<int> deps_left_;
    std::vector<std::vector<stream::TaskId>> succs_;
    std::deque<stream::TaskId> ready_memory_;
    std::deque<stream::TaskId> ready_compute_;
    int mem_in_flight_ = 0;
    int peak_mem_in_flight_ = 0;
    int current_phase_ = -1;
    int phase_remaining_ = 0;
    int tasks_done_ = 0;
    bool started_ = false;

    std::vector<double> task_start_;
    std::vector<double> task_end_;
    std::vector<int> pair_mem_mtl_;
    std::vector<core::PairSample> samples_;

    obs::Tracer tracer_; ///< one lock-free event ring per worker
    std::atomic<long> pin_failures_{0};
    std::once_flag pin_warn_once_;

    double run_start_ = 0.0; ///< steady-clock origin, seconds
};

} // namespace tt::runtime

#endif // TT_RUNTIME_RUNTIME_HH
