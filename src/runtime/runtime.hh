/**
 * @file
 * Real-thread stream-task runtime (the paper's prototype, Sec. V).
 *
 * The main thread enqueues every memory and compute task of the
 * graph with their dependencies, then spawns one software thread per
 * hardware context (pinned with CPU affinity where the platform
 * supports it). Workers dequeue tasks under a single lock; a counter
 * under the same lock enforces the MTL restriction -- exactly the
 * "lock and a counter" mechanism the paper describes. Every finished
 * pair is timed with the steady clock and reported to the policy, so
 * DynamicThrottlePolicy and friends behave identically here and on
 * the simulated machine.
 *
 * Scheduling rules match simrt::SimRuntime: barrier-separated
 * phases, compute-first dispatch, memory dispatch gated by
 * policy.currentMtl().
 */

#ifndef TT_RUNTIME_RUNTIME_HH
#define TT_RUNTIME_RUNTIME_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.hh"
#include "obs/trace.hh"
#include "stream/task_graph.hh"

namespace tt {
class MetricsRegistry;
}

namespace tt::fault {
class FaultPlan;
}

namespace tt::runtime {

/** Options controlling the worker pool. */
struct RuntimeOptions
{
    /** Worker threads (= hardware contexts, the model's n). */
    int threads = 1;

    /** Pin worker i to CPU i % hw_cpus (Linux only; no-op elsewhere). */
    bool pin_affinity = true;

    /**
     * Per-worker event-trace ring capacity. The rings are sized to
     * min(trace_capacity, task count), so the default traces every
     * task of any reasonable graph; shrink it to bound memory on
     * huge graphs (the oldest events are then dropped and counted).
     */
    std::size_t trace_capacity = 1 << 16;

    /**
     * Optional metrics sink (not owned). When set, the runtime
     * publishes "runtime.*" counters/gauges/histograms: T_m and T_c
     * per MTL, ready-queue depths, the mem_in_flight high-water
     * mark, pin failures. Bind the same registry to the policy to
     * get the "policy.*" series alongside.
     */
    MetricsRegistry *metrics = nullptr;

    /**
     * Optional fault-injection plan (not owned). Faults are applied
     * deterministically per (task, attempt); see fault/fault_plan.hh.
     */
    const fault::FaultPlan *fault_plan = nullptr;

    /**
     * Attempts beyond the first before a throwing task fails the
     * run. Failed compute attempts are retried at *pair*
     * granularity: the pair's memory body is re-executed first so
     * the compute body sees freshly gathered data. Each retry is
     * counted in `runtime.task_retries`.
     */
    int max_task_retries = 3;

    /**
     * Base of the exponential retry backoff: attempt a sleeps
     * base * 2^a seconds (capped at 50 ms) before re-executing.
     */
    double retry_backoff_seconds = 100e-6;

    /**
     * Watchdog deadline for the whole run, in wall seconds; 0
     * disables it. A run that has not drained by then is assumed
     * wedged (stalled worker, livelocked policy): the watchdog dumps
     * diagnostics -- crash-dump hooks flush bound trace rings and
     * metrics -- and terminates the process with
     * `watchdog_exit_code`, converting a hang into a clean, bounded
     * failure.
     */
    double watchdog_seconds = 0.0;

    /** Process exit code used when the watchdog fires. */
    int watchdog_exit_code = 3;

    /**
     * Optional time-series sink (not owned). When set, a background
     * sampler thread appends one JSONL row (see obs/timeseries.hh)
     * every `timeseries_interval_seconds` while the run is live,
     * plus one final row at drain: wall time, current MTL, in-flight
     * memory tasks, ready-queue depths, pairs done, selections.
     */
    std::ostream *timeseries_out = nullptr;

    /** Sampling period of the time-series thread, in wall seconds. */
    double timeseries_interval_seconds = 1e-3;
};

/** Measurements from one host run. */
struct HostRunResult
{
    double seconds = 0.0;
    std::vector<core::PairSample> samples;
    core::PolicyStats policy_stats;
    std::vector<std::pair<double, int>> mtl_trace;
    double avg_tm = 0.0;
    double avg_tc = 0.0;
    double monitor_overhead = 0.0;

    /** Peak number of concurrently executing memory tasks observed. */
    int peak_mem_in_flight = 0;

    /** Merged per-worker event trace, ordered by start time. */
    std::vector<obs::TaskEvent> trace;

    /** Policy decision audit log (see core/audit.hh). */
    std::vector<core::MtlDecision> decisions;

    /** Events lost to trace-ring overwrites (0 unless capped). */
    std::uint64_t trace_dropped = 0;

    /** Workers whose CPU-affinity pin failed (0 when pinning is off). */
    long pin_failures = 0;

    /** Task attempts re-executed after a body exception. */
    long task_retries = 0;

    /** Tasks abandoned after exhausting max_task_retries. */
    long task_failures = 0;

    /** True when the run aborted instead of draining the graph. */
    bool failed = false;

    /** Human-readable cause when failed (empty otherwise). */
    std::string failure_reason;
};

/**
 * Couple a host run's event trace with the policy's MTL transition
 * log and the graph's phase names, ready for obs::writeChromeTrace.
 */
obs::TraceData toTraceData(const stream::TaskGraph &graph,
                           const HostRunResult &result);

/** Thread-pool scheduler enforcing the MTL restriction. */
class Runtime
{
  public:
    Runtime(const stream::TaskGraph &graph,
            core::SchedulingPolicy &policy, RuntimeOptions options);

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Execute the graph to completion; callable once. */
    HostRunResult run();

  private:
    void workerLoop(int worker_index);
    /** Under lock: next runnable task id, or kInvalidTask. */
    stream::TaskId pickLocked();
    /** Under lock: post-completion bookkeeping. */
    void completeLocked(stream::TaskId id, double start, double end);
    void activatePhaseLocked(int phase);

    /**
     * Execute one task body with injected faults, bounded retries
     * and exponential backoff (no lock held). Returns false -- with
     * the cause in *why -- when the attempts are exhausted.
     */
    bool executeWithRetries(const stream::Task &task, double *start,
                            double *end, std::string *why);
    /** Under lock: abort the run with a diagnostic cause. */
    void failRunLocked(stream::TaskId id, const std::string &why);
    /** Interruptible sleep used by stalls, stragglers and backoff. */
    void sleepSeconds(double seconds);
    /** Watchdog thread body: deadline wait, then diagnostic exit. */
    void watchdogLoop();
    /** Time-series sampler thread body (see RuntimeOptions). */
    void samplerLoop();
    /** Append one time-series row reflecting the live state. */
    void emitTimeseriesRow();
    /** Best-effort diagnostics dump (crash hook / watchdog path). */
    void crashDump();

    const stream::TaskGraph &graph_;
    core::SchedulingPolicy &policy_;
    RuntimeOptions options_;

    std::mutex mutex_;
    std::condition_variable cv_;

    std::vector<int> deps_left_;
    std::vector<std::vector<stream::TaskId>> succs_;
    std::deque<stream::TaskId> ready_memory_;
    std::deque<stream::TaskId> ready_compute_;
    int mem_in_flight_ = 0;
    int peak_mem_in_flight_ = 0;
    int current_phase_ = -1;
    int phase_remaining_ = 0;
    int tasks_done_ = 0;
    bool started_ = false;

    std::vector<double> task_start_;
    std::vector<double> task_end_;
    std::vector<int> pair_mem_mtl_;
    std::vector<core::PairSample> samples_;

    obs::Tracer tracer_; ///< one lock-free event ring per worker
    std::atomic<long> pin_failures_{0};
    std::once_flag pin_warn_once_;

    // Fault tolerance. run_failed_ is written under mutex_ but read
    // lock-free by sleeping workers and the crash-dump path.
    std::atomic<bool> run_failed_{false};
    std::string failure_reason_;
    std::atomic<long> task_retries_{0};
    long task_failures_ = 0;

    // Watchdog handshake.
    std::mutex watchdog_mutex_;
    std::condition_variable watchdog_cv_;
    bool run_complete_ = false;

    double run_start_ = 0.0; ///< steady-clock origin, seconds
};

} // namespace tt::runtime

#endif // TT_RUNTIME_RUNTIME_HH
