/**
 * @file
 * Real-thread stream-task runtime (the paper's prototype, Sec. V).
 *
 * A thin adapter: the MTL-gated scheduling state machine lives in
 * exec::Engine (shared with the simulated runtime), and this class
 * merely binds it to a HostThreadBackend -- one pinned software
 * thread per hardware context, timed with the steady clock. Workers
 * receive attempts under a single scheduler lock; a counter under the
 * same lock enforces the MTL restriction -- exactly the "lock and a
 * counter" mechanism the paper describes. Every finished pair is
 * reported to the policy, so DynamicThrottlePolicy and friends behave
 * identically here and on the simulated machine.
 *
 * RuntimeOptions and HostRunResult are aliases of the unified
 * exec::EngineOptions / exec::RunResult.
 */

#ifndef TT_RUNTIME_RUNTIME_HH
#define TT_RUNTIME_RUNTIME_HH

#include "exec/engine.hh"
#include "runtime/host_backend.hh"

namespace tt::runtime {

/** Options controlling the worker pool (unified engine options). */
using RuntimeOptions = exec::EngineOptions;

/** Measurements from one host run (unified run result). */
using HostRunResult = exec::RunResult;

/** See exec::toTraceData. */
using exec::toTraceData;

/** Thread-pool scheduler enforcing the MTL restriction. */
class Runtime
{
  public:
    Runtime(const stream::TaskGraph &graph,
            core::SchedulingPolicy &policy, RuntimeOptions options)
        : options_(options), backend_(graph, options_),
          engine_(graph, policy, options_)
    {
    }

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Execute the graph to completion; callable once. */
    HostRunResult run() { return engine_.run(backend_); }

  private:
    RuntimeOptions options_;
    HostThreadBackend backend_;
    exec::Engine engine_;
};

} // namespace tt::runtime

#endif // TT_RUNTIME_RUNTIME_HH
