#include "runtime/runtime.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tt::runtime {

using stream::Task;
using stream::TaskId;
using stream::TaskKind;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

void
pinToCpu(int index)
{
#if defined(__linux__)
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(index) % hw, &set);
    // Best effort: failure (e.g. restricted cgroup) is not fatal.
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)index;
#endif
}

} // namespace

Runtime::Runtime(const stream::TaskGraph &graph,
                 core::SchedulingPolicy &policy, RuntimeOptions options)
    : graph_(graph), policy_(policy), options_(options)
{
    tt_assert(options_.threads >= 1, "need at least one worker thread");

    const auto n_tasks = static_cast<std::size_t>(graph_.taskCount());
    deps_left_.assign(n_tasks, 0);
    succs_.assign(n_tasks, {});
    task_start_.assign(n_tasks, 0.0);
    task_end_.assign(n_tasks, 0.0);
    pair_mem_mtl_.assign(static_cast<std::size_t>(graph_.pairCount()), 0);
    for (const Task &task : graph_.tasks()) {
        deps_left_[static_cast<std::size_t>(task.id)] =
            static_cast<int>(task.deps.size());
        for (TaskId dep : task.deps)
            succs_[static_cast<std::size_t>(dep)].push_back(task.id);
    }
}

void
Runtime::activatePhaseLocked(int phase)
{
    current_phase_ = phase;
    phase_remaining_ = 0;
    for (const Task &task : graph_.tasks()) {
        if (task.phase != phase)
            continue;
        ++phase_remaining_;
        if (deps_left_[static_cast<std::size_t>(task.id)] == 0) {
            tt_assert(task.kind == TaskKind::Memory,
                      "only memory tasks can be initially ready");
            ready_memory_.push_back(task.id);
        }
    }
}

stream::TaskId
Runtime::pickLocked()
{
    if (!ready_compute_.empty()) {
        const TaskId id = ready_compute_.front();
        ready_compute_.pop_front();
        return id;
    }
    if (!ready_memory_.empty() && mem_in_flight_ < policy_.currentMtl()) {
        const TaskId id = ready_memory_.front();
        ready_memory_.pop_front();
        return id;
    }
    return stream::kInvalidTask;
}

void
Runtime::workerLoop(int worker_index)
{
    if (options_.pin_affinity)
        pinToCpu(worker_index);

    std::unique_lock lock(mutex_);
    while (tasks_done_ < graph_.taskCount()) {
        const TaskId id = pickLocked();
        if (id == stream::kInvalidTask) {
            cv_.wait(lock);
            continue;
        }

        const Task &task = graph_.task(id);
        if (task.kind == TaskKind::Memory) {
            ++mem_in_flight_;
            peak_mem_in_flight_ =
                std::max(peak_mem_in_flight_, mem_in_flight_);
            pair_mem_mtl_[static_cast<std::size_t>(task.pair)] =
                policy_.currentMtl();
        }

        lock.unlock();
        const double start = nowSeconds() - run_start_;
        if (task.host_work)
            task.host_work();
        const double end = nowSeconds() - run_start_;
        lock.lock();

        completeLocked(id, start, end);
        cv_.notify_all();
    }
    cv_.notify_all();
}

void
Runtime::completeLocked(TaskId id, double start, double end)
{
    const Task &task = graph_.task(id);
    task_start_[static_cast<std::size_t>(id)] = start;
    task_end_[static_cast<std::size_t>(id)] = end;
    ++tasks_done_;

    if (task.kind == TaskKind::Memory) {
        --mem_in_flight_;
    } else {
        const stream::PairId pair = task.pair;
        const TaskId mem_id = graph_.memoryTaskOf(pair);
        core::PairSample sample;
        sample.tm = task_end_[static_cast<std::size_t>(mem_id)] -
                    task_start_[static_cast<std::size_t>(mem_id)];
        sample.tc = end - start;
        sample.end_time = end;
        sample.mtl = pair_mem_mtl_[static_cast<std::size_t>(pair)];
        samples_.push_back(sample);
        policy_.onPairMeasured(sample);
    }

    for (TaskId succ : succs_[static_cast<std::size_t>(id)]) {
        if (--deps_left_[static_cast<std::size_t>(succ)] == 0) {
            if (graph_.task(succ).kind == TaskKind::Memory)
                ready_memory_.push_back(succ);
            else
                ready_compute_.push_back(succ);
        }
    }

    if (--phase_remaining_ == 0 &&
        current_phase_ + 1 < graph_.phaseCount()) {
        activatePhaseLocked(current_phase_ + 1);
    }
}

HostRunResult
Runtime::run()
{
    tt_assert(!started_, "Runtime::run() is single-shot");
    started_ = true;

    HostRunResult result;
    if (graph_.empty()) {
        result.mtl_trace = policy_.mtlTrace();
        return result;
    }

    run_start_ = nowSeconds();
    {
        std::lock_guard lock(mutex_);
        activatePhaseLocked(0);
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(options_.threads));
    for (int w = 0; w < options_.threads; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
    for (auto &worker : workers)
        worker.join();

    tt_assert(tasks_done_ == graph_.taskCount(),
              "runtime drained with unfinished tasks");

    result.seconds = nowSeconds() - run_start_;
    result.samples = samples_;
    result.policy_stats = policy_.stats();
    result.mtl_trace = policy_.mtlTrace();
    result.peak_mem_in_flight = peak_mem_in_flight_;

    double tm_sum = 0.0;
    double tc_sum = 0.0;
    for (const auto &sample : samples_) {
        tm_sum += sample.tm;
        tc_sum += sample.tc;
    }
    if (!samples_.empty()) {
        result.avg_tm = tm_sum / static_cast<double>(samples_.size());
        result.avg_tc = tc_sum / static_cast<double>(samples_.size());
        result.monitor_overhead =
            static_cast<double>(result.policy_stats.probe_pairs) /
            static_cast<double>(samples_.size());
    }
    return result;
}

} // namespace tt::runtime
