#include "runtime/runtime.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "util/logging.hh"
#include "util/stats.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tt::runtime {

using stream::Task;
using stream::TaskId;
using stream::TaskKind;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Pin the calling thread; false when the platform refused. */
bool
pinToCpu(int index)
{
#if defined(__linux__)
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(index) % hw, &set);
    // Best effort: failure (e.g. restricted cgroup) is not fatal,
    // but the caller records it so affinity-less runs are visible.
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
#else
    (void)index;
    return true;
#endif
}

std::size_t
ringCapacity(const RuntimeOptions &options, int task_count)
{
    const auto wanted = std::min(
        options.trace_capacity, static_cast<std::size_t>(task_count));
    return std::max<std::size_t>(1, wanted);
}

} // namespace

Runtime::Runtime(const stream::TaskGraph &graph,
                 core::SchedulingPolicy &policy, RuntimeOptions options)
    : graph_(graph), policy_(policy), options_(options),
      tracer_(std::max(1, options.threads),
              ringCapacity(options, graph.taskCount()))
{
    tt_assert(options_.threads >= 1, "need at least one worker thread");

    const auto n_tasks = static_cast<std::size_t>(graph_.taskCount());
    deps_left_.assign(n_tasks, 0);
    succs_.assign(n_tasks, {});
    task_start_.assign(n_tasks, 0.0);
    task_end_.assign(n_tasks, 0.0);
    pair_mem_mtl_.assign(static_cast<std::size_t>(graph_.pairCount()), 0);
    for (const Task &task : graph_.tasks()) {
        deps_left_[static_cast<std::size_t>(task.id)] =
            static_cast<int>(task.deps.size());
        for (TaskId dep : task.deps)
            succs_[static_cast<std::size_t>(dep)].push_back(task.id);
    }
}

void
Runtime::activatePhaseLocked(int phase)
{
    current_phase_ = phase;
    phase_remaining_ = 0;
    for (const Task &task : graph_.tasks()) {
        if (task.phase != phase)
            continue;
        ++phase_remaining_;
        if (deps_left_[static_cast<std::size_t>(task.id)] == 0) {
            tt_assert(task.kind == TaskKind::Memory,
                      "only memory tasks can be initially ready");
            ready_memory_.push_back(task.id);
        }
    }
}

stream::TaskId
Runtime::pickLocked()
{
    if (!ready_compute_.empty()) {
        const TaskId id = ready_compute_.front();
        ready_compute_.pop_front();
        return id;
    }
    if (!ready_memory_.empty() && mem_in_flight_ < policy_.currentMtl()) {
        const TaskId id = ready_memory_.front();
        ready_memory_.pop_front();
        return id;
    }
    return stream::kInvalidTask;
}

void
Runtime::workerLoop(int worker_index)
{
    if (options_.pin_affinity && !pinToCpu(worker_index)) {
        pin_failures_.fetch_add(1, std::memory_order_relaxed);
        std::call_once(pin_warn_once_, [] {
            tt_warn("pthread_setaffinity_np failed; workers run "
                    "unpinned (results may be noisier)");
        });
    }

    obs::TraceRing &ring = tracer_.ring(worker_index);

    std::unique_lock lock(mutex_);
    while (tasks_done_ < graph_.taskCount()) {
        const TaskId id = pickLocked();
        if (id == stream::kInvalidTask) {
            cv_.wait(lock);
            continue;
        }

        const Task &task = graph_.task(id);
        const int mtl_at_dispatch = policy_.currentMtl();
        if (task.kind == TaskKind::Memory) {
            ++mem_in_flight_;
            peak_mem_in_flight_ =
                std::max(peak_mem_in_flight_, mem_in_flight_);
            pair_mem_mtl_[static_cast<std::size_t>(task.pair)] =
                mtl_at_dispatch;
        }

        lock.unlock();
        const double start = nowSeconds() - run_start_;
        if (task.host_work)
            task.host_work();
        const double end = nowSeconds() - run_start_;

        // Record into this worker's private ring while unlocked:
        // tracing never contends with the scheduler.
        obs::TaskEvent event;
        event.task = id;
        event.pair = task.pair;
        event.phase = task.phase;
        event.is_memory = task.kind == TaskKind::Memory;
        event.worker = worker_index;
        event.start = start;
        event.end = end;
        event.mtl = mtl_at_dispatch;
        ring.record(event);

        lock.lock();
        completeLocked(id, start, end);
        cv_.notify_all();
    }
    cv_.notify_all();
}

void
Runtime::completeLocked(TaskId id, double start, double end)
{
    const Task &task = graph_.task(id);
    task_start_[static_cast<std::size_t>(id)] = start;
    task_end_[static_cast<std::size_t>(id)] = end;
    ++tasks_done_;

    if (task.kind == TaskKind::Memory) {
        --mem_in_flight_;
    } else {
        const stream::PairId pair = task.pair;
        const TaskId mem_id = graph_.memoryTaskOf(pair);
        core::PairSample sample;
        sample.tm = task_end_[static_cast<std::size_t>(mem_id)] -
                    task_start_[static_cast<std::size_t>(mem_id)];
        sample.tc = end - start;
        sample.end_time = end;
        sample.mtl = pair_mem_mtl_[static_cast<std::size_t>(pair)];
        samples_.push_back(sample);
        if (MetricsRegistry *metrics = options_.metrics) {
            const std::string suffix =
                ".mtl=" + std::to_string(sample.mtl);
            metrics->observe("runtime.tm_seconds" + suffix, sample.tm);
            metrics->observe("runtime.tc_seconds" + suffix, sample.tc);
        }
        policy_.onPairMeasured(sample);
    }

    if (MetricsRegistry *metrics = options_.metrics) {
        metrics->observe(
            "runtime.ready_memory_depth",
            static_cast<double>(ready_memory_.size()),
            Histogram::Options{.min_value = 1.0, .growth = 2.0,
                               .buckets = 24});
        metrics->observe(
            "runtime.ready_compute_depth",
            static_cast<double>(ready_compute_.size()),
            Histogram::Options{.min_value = 1.0, .growth = 2.0,
                               .buckets = 24});
    }

    for (TaskId succ : succs_[static_cast<std::size_t>(id)]) {
        if (--deps_left_[static_cast<std::size_t>(succ)] == 0) {
            if (graph_.task(succ).kind == TaskKind::Memory)
                ready_memory_.push_back(succ);
            else
                ready_compute_.push_back(succ);
        }
    }

    if (--phase_remaining_ == 0 &&
        current_phase_ + 1 < graph_.phaseCount()) {
        activatePhaseLocked(current_phase_ + 1);
    }
}

HostRunResult
Runtime::run()
{
    tt_assert(!started_, "Runtime::run() is single-shot");
    started_ = true;

    HostRunResult result;
    if (graph_.empty()) {
        result.mtl_trace = policy_.mtlTrace();
        return result;
    }

    run_start_ = nowSeconds();
    {
        std::lock_guard lock(mutex_);
        activatePhaseLocked(0);
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(options_.threads));
    for (int w = 0; w < options_.threads; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
    for (auto &worker : workers)
        worker.join();

    tt_assert(tasks_done_ == graph_.taskCount(),
              "runtime drained with unfinished tasks");

    result.seconds = nowSeconds() - run_start_;
    result.samples = samples_;
    result.policy_stats = policy_.stats();
    result.mtl_trace = policy_.mtlTrace();
    result.peak_mem_in_flight = peak_mem_in_flight_;
    result.trace = tracer_.merged();
    result.trace_dropped = tracer_.dropped();
    result.pin_failures = pin_failures_.load(std::memory_order_relaxed);

    double tm_sum = 0.0;
    double tc_sum = 0.0;
    for (const auto &sample : samples_) {
        tm_sum += sample.tm;
        tc_sum += sample.tc;
    }
    if (!samples_.empty()) {
        result.avg_tm = tm_sum / static_cast<double>(samples_.size());
        result.avg_tc = tc_sum / static_cast<double>(samples_.size());
        // Probe overhead counts only samples a selection accepted;
        // stale pairs (measured under a pre-probe MTL) are tracked
        // separately in policy_stats.stale_pairs.
        result.monitor_overhead =
            static_cast<double>(result.policy_stats.probe_pairs) /
            static_cast<double>(samples_.size());
    }

    if (MetricsRegistry *metrics = options_.metrics) {
        metrics->add("runtime.tasks_done", tasks_done_);
        metrics->add("runtime.pin_failed", result.pin_failures);
        metrics->add("runtime.trace_dropped",
                     static_cast<std::int64_t>(result.trace_dropped));
        metrics->setMax("runtime.peak_mem_in_flight",
                        peak_mem_in_flight_);
        metrics->set("runtime.makespan_seconds", result.seconds);
        metrics->set("runtime.monitor_overhead",
                     result.monitor_overhead);
    }
    return result;
}

obs::TraceData
toTraceData(const stream::TaskGraph &graph, const HostRunResult &result)
{
    obs::TraceData data;
    data.events = result.trace;
    data.mtl_trace = result.mtl_trace;
    data.phase_names.reserve(
        static_cast<std::size_t>(graph.phaseCount()));
    for (const stream::Phase &phase : graph.phases())
        data.phase_names.push_back(phase.name);
    return data;
}

} // namespace tt::runtime
