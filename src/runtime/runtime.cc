#include "runtime/runtime.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "core/sample_guard.hh"
#include "fault/fault_plan.hh"
#include "obs/timeseries.hh"
#include "util/logging.hh"
#include "util/stats.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tt::runtime {

using stream::Task;
using stream::TaskId;
using stream::TaskKind;

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Pin the calling thread; false when the platform refused. */
bool
pinToCpu(int index)
{
#if defined(__linux__)
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(index) % hw, &set);
    // Best effort: failure (e.g. restricted cgroup) is not fatal,
    // but the caller records it so affinity-less runs are visible.
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
#else
    (void)index;
    return true;
#endif
}

std::size_t
ringCapacity(const RuntimeOptions &options, int task_count)
{
    const auto wanted = std::min(
        options.trace_capacity, static_cast<std::size_t>(task_count));
    return std::max<std::size_t>(1, wanted);
}

} // namespace

Runtime::Runtime(const stream::TaskGraph &graph,
                 core::SchedulingPolicy &policy, RuntimeOptions options)
    : graph_(graph), policy_(policy), options_(options),
      tracer_(std::max(1, options.threads),
              ringCapacity(options, graph.taskCount()))
{
    tt_assert(options_.threads >= 1, "need at least one worker thread");

    const auto n_tasks = static_cast<std::size_t>(graph_.taskCount());
    deps_left_.assign(n_tasks, 0);
    succs_.assign(n_tasks, {});
    task_start_.assign(n_tasks, 0.0);
    task_end_.assign(n_tasks, 0.0);
    pair_mem_mtl_.assign(static_cast<std::size_t>(graph_.pairCount()), 0);
    for (const Task &task : graph_.tasks()) {
        deps_left_[static_cast<std::size_t>(task.id)] =
            static_cast<int>(task.deps.size());
        for (TaskId dep : task.deps)
            succs_[static_cast<std::size_t>(dep)].push_back(task.id);
    }
}

void
Runtime::activatePhaseLocked(int phase)
{
    current_phase_ = phase;
    phase_remaining_ = 0;
    for (const Task &task : graph_.tasks()) {
        if (task.phase != phase)
            continue;
        ++phase_remaining_;
        if (deps_left_[static_cast<std::size_t>(task.id)] == 0) {
            tt_assert(task.kind == TaskKind::Memory,
                      "only memory tasks can be initially ready");
            ready_memory_.push_back(task.id);
        }
    }
}

stream::TaskId
Runtime::pickLocked()
{
    if (!ready_compute_.empty()) {
        const TaskId id = ready_compute_.front();
        ready_compute_.pop_front();
        return id;
    }
    if (!ready_memory_.empty() && mem_in_flight_ < policy_.currentMtl()) {
        const TaskId id = ready_memory_.front();
        ready_memory_.pop_front();
        return id;
    }
    return stream::kInvalidTask;
}

void
Runtime::workerLoop(int worker_index)
{
    if (options_.pin_affinity && !pinToCpu(worker_index)) {
        pin_failures_.fetch_add(1, std::memory_order_relaxed);
        std::call_once(pin_warn_once_, [] {
            tt_warn("pthread_setaffinity_np failed; workers run "
                    "unpinned (results may be noisier)");
        });
    }

    obs::TraceRing &ring = tracer_.ring(worker_index);

    std::unique_lock lock(mutex_);
    while (tasks_done_ < graph_.taskCount() &&
           !run_failed_.load(std::memory_order_relaxed)) {
        const TaskId id = pickLocked();
        if (id == stream::kInvalidTask) {
            cv_.wait(lock);
            continue;
        }

        const Task &task = graph_.task(id);
        const int mtl_at_dispatch = policy_.currentMtl();
        if (task.kind == TaskKind::Memory) {
            ++mem_in_flight_;
            peak_mem_in_flight_ =
                std::max(peak_mem_in_flight_, mem_in_flight_);
            pair_mem_mtl_[static_cast<std::size_t>(task.pair)] =
                mtl_at_dispatch;
        }

        lock.unlock();
        double start = 0.0;
        double end = 0.0;
        std::string why;
        const bool ok = executeWithRetries(task, &start, &end, &why);

        if (ok) {
            // Record into this worker's private ring while unlocked:
            // tracing never contends with the scheduler.
            obs::TaskEvent event;
            event.task = id;
            event.pair = task.pair;
            event.phase = task.phase;
            event.is_memory = task.kind == TaskKind::Memory;
            event.worker = worker_index;
            event.start = start;
            event.end = end;
            event.mtl = mtl_at_dispatch;
            ring.record(event);
        }

        lock.lock();
        if (ok)
            completeLocked(id, start, end);
        else
            failRunLocked(id, why);
        cv_.notify_all();
    }
    cv_.notify_all();
}

bool
Runtime::executeWithRetries(const Task &task, double *start,
                            double *end, std::string *why)
{
    const fault::FaultPlan *plan = options_.fault_plan;
    const bool inject = plan != nullptr && plan->enabled();

    for (int attempt = 0;; ++attempt) {
        fault::TaskFaults faults;
        if (inject)
            faults = plan->forTask(task.id, attempt);
        try {
            if (attempt > 0 && task.kind == TaskKind::Compute) {
                // Pair-granularity retry: the compute body consumes
                // data its memory partner gathered, and the failed
                // attempt may have clobbered it mid-flight.
                // Re-execute the memory body first so the retry sees
                // a freshly gathered pair, then re-run compute.
                const Task &mem =
                    graph_.task(graph_.memoryTaskOf(task.pair));
                if (mem.host_work)
                    mem.host_work();
            }
            *start = nowSeconds() - run_start_;
            if (faults.stall)
                sleepSeconds(plan->config().stall_seconds);
            if (faults.fail)
                throw fault::InjectedFault(task.id, attempt);
            if (task.host_work)
                task.host_work();
            if (faults.latency_factor > 1.0) {
                const double elapsed =
                    nowSeconds() - run_start_ - *start;
                sleepSeconds(elapsed * (faults.latency_factor - 1.0));
            }
            *end = nowSeconds() - run_start_;
            return true;
        } catch (const std::exception &error) {
            if (attempt >= options_.max_task_retries) {
                *why = error.what();
                return false;
            }
        } catch (...) {
            if (attempt >= options_.max_task_retries) {
                *why = "non-standard exception";
                return false;
            }
        }

        task_retries_.fetch_add(1, std::memory_order_relaxed);
        if (MetricsRegistry *metrics = options_.metrics)
            metrics->add("runtime.task_retries", 1);
        const double backoff =
            std::min(options_.retry_backoff_seconds *
                         std::ldexp(1.0, attempt),
                     50e-3);
        if (backoff > 0.0)
            sleepSeconds(backoff);
        if (run_failed_.load(std::memory_order_relaxed)) {
            // Another worker already failed the run; don't burn the
            // remaining attempts racing it to the diagnostic.
            *why = "run already failed";
            return false;
        }
    }
}

void
Runtime::failRunLocked(TaskId id, const std::string &why)
{
    ++task_failures_;
    if (MetricsRegistry *metrics = options_.metrics)
        metrics->add("runtime.task_failures", 1);
    const Task &task = graph_.task(id);
    if (task.kind == TaskKind::Memory)
        --mem_in_flight_;
    if (!run_failed_.load(std::memory_order_relaxed)) {
        failure_reason_ = "task " + std::to_string(id) +
                          " failed after " +
                          std::to_string(options_.max_task_retries) +
                          " retries: " + why;
        run_failed_.store(true, std::memory_order_relaxed);
        tt_warn("aborting run: ", failure_reason_);
    }
}

void
Runtime::sleepSeconds(double seconds)
{
    // Chunked so stalled/backing-off workers notice a failed run (or
    // simply finish) within ~10 ms instead of sleeping the full span.
    const double deadline = nowSeconds() + seconds;
    while (!run_failed_.load(std::memory_order_relaxed)) {
        const double left = deadline - nowSeconds();
        if (left <= 0.0)
            return;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(left, 10e-3)));
    }
}

void
Runtime::watchdogLoop()
{
    std::unique_lock lock(watchdog_mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.watchdog_seconds));
    const bool drained = watchdog_cv_.wait_until(
        lock, deadline, [this] { return run_complete_; });
    if (drained)
        return;
    lock.unlock();

    if (MetricsRegistry *metrics = options_.metrics)
        metrics->add("runtime.watchdog_fired", 1);
    std::fprintf(stderr,
                 "tt: watchdog: run exceeded %.3f s deadline; dumping "
                 "diagnostics and exiting with code %d\n",
                 options_.watchdog_seconds, options_.watchdog_exit_code);
    runCrashDumpHooks(); // includes this runtime's crashDump()
    std::fflush(nullptr);
    // Workers may be wedged holding locks; a normal exit would hang
    // in their joins/destructors, so leave without unwinding.
    std::_Exit(options_.watchdog_exit_code);
}

void
Runtime::emitTimeseriesRow()
{
    obs::TimeseriesSample row;
    {
        std::lock_guard lock(mutex_);
        row.time = nowSeconds() - run_start_;
        row.mtl = policy_.currentMtl();
        row.mem_in_flight = mem_in_flight_;
        row.tasks_done = tasks_done_;
        row.pairs_done = static_cast<long>(samples_.size());
        row.ready_memory = ready_memory_.size();
        row.ready_compute = ready_compute_.size();
        row.selections = policy_.stats().selections;
        row.degraded = policy_.degraded();
    }
    obs::writeTimeseriesRow(row, *options_.timeseries_out);
}

void
Runtime::samplerLoop()
{
    // Shares the watchdog's handshake: wait_for() doubles as the
    // sampling period and as a prompt wake-up when the run drains.
    const auto interval = std::chrono::duration<double>(
        std::max(options_.timeseries_interval_seconds, 1e-6));
    std::unique_lock lock(watchdog_mutex_);
    while (!run_complete_) {
        watchdog_cv_.wait_for(lock, interval,
                              [this] { return run_complete_; });
        if (run_complete_)
            break;
        lock.unlock();
        emitTimeseriesRow();
        lock.lock();
    }
    lock.unlock();
    // Final row so even a sub-interval run leaves a snapshot behind.
    emitTimeseriesRow();
    options_.timeseries_out->flush();
}

void
Runtime::crashDump()
{
    // Runs on the watchdog/terminate path with workers possibly
    // wedged inside the scheduler lock: never block, report whatever
    // is reachable. The counter reads race with live workers, which
    // is acceptable for a diagnostic of a dying process.
    std::unique_lock lock(mutex_, std::try_to_lock);
    if (lock.owns_lock())
        std::fprintf(stderr,
                     "tt: runtime progress: %d/%d tasks done, "
                     "%d memory tasks in flight\n",
                     tasks_done_, graph_.taskCount(), mem_in_flight_);
    else
        std::fprintf(stderr,
                     "tt: runtime progress: scheduler lock held "
                     "(worker wedged mid-dispatch), %d tasks total\n",
                     graph_.taskCount());
    std::fprintf(
        stderr,
        "tt: runtime trace: %llu events recorded, %llu dropped; "
        "%ld task retries\n",
        static_cast<unsigned long long>(tracer_.recorded()),
        static_cast<unsigned long long>(tracer_.dropped()),
        task_retries_.load(std::memory_order_relaxed));
}

void
Runtime::completeLocked(TaskId id, double start, double end)
{
    const Task &task = graph_.task(id);
    task_start_[static_cast<std::size_t>(id)] = start;
    task_end_[static_cast<std::size_t>(id)] = end;
    ++tasks_done_;

    if (task.kind == TaskKind::Memory) {
        --mem_in_flight_;
    } else {
        const stream::PairId pair = task.pair;
        const TaskId mem_id = graph_.memoryTaskOf(pair);
        core::PairSample sample;
        sample.tm = task_end_[static_cast<std::size_t>(mem_id)] -
                    task_start_[static_cast<std::size_t>(mem_id)];
        sample.tc = end - start;
        sample.end_time = end;
        sample.mtl = pair_mem_mtl_[static_cast<std::size_t>(pair)];
        if (options_.fault_plan && options_.fault_plan->enabled()) {
            // Corruption models a broken clock read at measurement
            // time. Keyed by the compute task with attempt 0 so the
            // same pairs corrupt regardless of retry history -- and
            // identically on the simulated runtime.
            const fault::TaskFaults faults =
                options_.fault_plan->forTask(id, 0);
            if (faults.corrupt_sample) {
                sample.tm = options_.fault_plan->corruptValue(id, 0);
                sample.tc = options_.fault_plan->corruptValue(id, 1);
            }
        }
        samples_.push_back(sample);
        if (MetricsRegistry *metrics = options_.metrics;
            metrics != nullptr && std::isfinite(sample.tm) &&
            std::isfinite(sample.tc)) {
            const std::string suffix =
                ".mtl=" + std::to_string(sample.mtl);
            metrics->observe("runtime.tm_seconds" + suffix, sample.tm);
            metrics->observe("runtime.tc_seconds" + suffix, sample.tc);
        }
        policy_.onPairMeasured(sample);
    }

    if (MetricsRegistry *metrics = options_.metrics) {
        metrics->observe(
            "runtime.ready_memory_depth",
            static_cast<double>(ready_memory_.size()),
            Histogram::Options{.min_value = 1.0, .growth = 2.0,
                               .buckets = 24});
        metrics->observe(
            "runtime.ready_compute_depth",
            static_cast<double>(ready_compute_.size()),
            Histogram::Options{.min_value = 1.0, .growth = 2.0,
                               .buckets = 24});
    }

    for (TaskId succ : succs_[static_cast<std::size_t>(id)]) {
        if (--deps_left_[static_cast<std::size_t>(succ)] == 0) {
            if (graph_.task(succ).kind == TaskKind::Memory)
                ready_memory_.push_back(succ);
            else
                ready_compute_.push_back(succ);
        }
    }

    if (--phase_remaining_ == 0 &&
        current_phase_ + 1 < graph_.phaseCount()) {
        activatePhaseLocked(current_phase_ + 1);
    }
}

HostRunResult
Runtime::run()
{
    tt_assert(!started_, "Runtime::run() is single-shot");
    started_ = true;

    HostRunResult result;
    if (graph_.empty()) {
        result.mtl_trace = policy_.mtlTrace();
        return result;
    }

    run_start_ = nowSeconds();
    {
        std::lock_guard lock(mutex_);
        activatePhaseLocked(0);
    }

    // While the run is live, abnormal termination (tt_assert, the
    // watchdog) can flush this runtime's diagnostics.
    const int hook_id = registerCrashDumpHook([this] { crashDump(); });

    std::thread watchdog;
    if (options_.watchdog_seconds > 0.0)
        watchdog = std::thread([this] { watchdogLoop(); });
    std::thread sampler;
    if (options_.timeseries_out != nullptr)
        sampler = std::thread([this] { samplerLoop(); });

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(options_.threads));
    for (int w = 0; w < options_.threads; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
    for (auto &worker : workers)
        worker.join();

    {
        std::lock_guard lock(watchdog_mutex_);
        run_complete_ = true;
    }
    watchdog_cv_.notify_all();
    if (watchdog.joinable())
        watchdog.join();
    if (sampler.joinable())
        sampler.join();
    unregisterCrashDumpHook(hook_id);

    result.failed = run_failed_.load(std::memory_order_relaxed);
    result.failure_reason = failure_reason_;
    result.task_retries =
        task_retries_.load(std::memory_order_relaxed);
    result.task_failures = task_failures_;
    tt_assert(result.failed || tasks_done_ == graph_.taskCount(),
              "runtime drained with unfinished tasks");

    result.seconds = nowSeconds() - run_start_;
    result.samples = samples_;
    result.policy_stats = policy_.stats();
    result.mtl_trace = policy_.mtlTrace();
    result.decisions = policy_.decisions();
    result.peak_mem_in_flight = peak_mem_in_flight_;
    result.trace = tracer_.merged();
    result.trace_dropped = tracer_.dropped();
    result.pin_failures = pin_failures_.load(std::memory_order_relaxed);

    // Corrupted samples (injected or from a glitched clock) stay in
    // result.samples for inspection but are excluded from the
    // averages — same screen the policies apply — so one NaN or
    // absurd outlier cannot blank the whole summary.
    core::SampleGuard summary_guard;
    double tm_sum = 0.0;
    double tc_sum = 0.0;
    long clean = 0;
    for (const auto &sample : samples_) {
        if (!summary_guard.accept(sample))
            continue;
        tm_sum += sample.tm;
        tc_sum += sample.tc;
        ++clean;
    }
    if (clean > 0) {
        result.avg_tm = tm_sum / static_cast<double>(clean);
        result.avg_tc = tc_sum / static_cast<double>(clean);
    }
    if (!samples_.empty()) {
        // Probe overhead counts only samples a selection accepted;
        // stale pairs (measured under a pre-probe MTL) are tracked
        // separately in policy_stats.stale_pairs.
        result.monitor_overhead =
            static_cast<double>(result.policy_stats.probe_pairs) /
            static_cast<double>(samples_.size());
    }

    if (MetricsRegistry *metrics = options_.metrics) {
        metrics->add("runtime.tasks_done", tasks_done_);
        metrics->add("runtime.pin_failed", result.pin_failures);
        metrics->add("trace.events_dropped",
                     static_cast<std::int64_t>(result.trace_dropped));
        metrics->setMax("runtime.peak_mem_in_flight",
                        peak_mem_in_flight_);
        metrics->set("runtime.makespan_seconds", result.seconds);
        metrics->set("runtime.monitor_overhead",
                     result.monitor_overhead);
    }
    return result;
}

obs::TraceData
toTraceData(const stream::TaskGraph &graph, const HostRunResult &result)
{
    obs::TraceData data;
    data.events = result.trace;
    data.mtl_trace = result.mtl_trace;
    data.decisions = result.decisions;
    data.phase_names.reserve(
        static_cast<std::size_t>(graph.phaseCount()));
    for (const stream::Phase &phase : graph.phases())
        data.phase_names.push_back(phase.name);
    return data;
}

} // namespace tt::runtime
