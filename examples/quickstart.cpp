/**
 * @file
 * Quickstart: build a stream program, run it twice on the simulated
 * quad-core i7 -- once interference-oblivious, once under the
 * paper's dynamic memory thread throttling -- and compare.
 *
 * Usage: quickstart [ratio]
 *   ratio: target memory-to-compute ratio T_m1/T_c (default 0.5,
 *          i.e. a workload whose best MTL is 2 on four cores).
 */

#include <cstdio>
#include <cstdlib>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "workloads/synthetic.hh"

int
main(int argc, char **argv)
{
    const double ratio = argc > 1 ? std::atof(argv[1]) : 0.5;
    if (ratio <= 0.0) {
        std::fprintf(stderr, "ratio must be positive\n");
        return 1;
    }

    // The paper's machine: 4-core Nehalem, one DDR3-1066 channel.
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();

    // A synthetic gather-compute-scatter program (Fig. 12) with the
    // requested memory-to-compute ratio.
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = ratio;
    params.footprint_bytes = 512 * 1024;
    params.pairs = 128;
    const auto graph = tt::workloads::buildSyntheticSim(machine, params);

    // Baseline: conventional interference-oblivious scheduling
    // (memory tasks never throttled, MTL = n).
    tt::core::ConventionalPolicy conventional(machine.contexts());
    const auto base = tt::simrt::runOnce(machine, graph, conventional);

    // The paper's mechanism: phase detection + model-driven MTL
    // selection, W = 8 pairs per estimate.
    tt::core::DynamicThrottlePolicy dynamic(machine.contexts(), 8);
    const auto throttled = tt::simrt::runOnce(machine, graph, dynamic);

    std::printf("workload: %d pairs, T_m1/T_c target %.2f\n",
                params.pairs, ratio);
    std::printf("conventional (MTL=%d): %9.3f ms  (T_m=%.1f us, "
                "T_c=%.1f us)\n",
                machine.contexts(), base.seconds * 1e3,
                base.avg_tm * 1e6, base.avg_tc * 1e6);

    int final_mtl = machine.contexts();
    if (!throttled.mtl_trace.empty())
        final_mtl = throttled.mtl_trace.back().second;
    std::printf("dynamic throttling:    %9.3f ms  (D-MTL=%d, "
                "monitor overhead %.2f%%)\n",
                throttled.seconds * 1e3, final_mtl,
                throttled.monitor_overhead * 100.0);
    std::printf("speedup: %.3fx\n", base.seconds / throttled.seconds);
    return 0;
}
