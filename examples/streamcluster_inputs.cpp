/**
 * @file
 * Example: input-set adaptation (the paper's Fig. 17 story).
 *
 * The same streamcluster program processes inputs of different
 * dimensionality; each input shifts the memory-to-compute ratio and
 * therefore the right Memory Task Limit. The dynamic mechanism
 * re-discovers the right MTL for every input with no offline tuning.
 */

#include <cstdio>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "workloads/streamcluster.hh"
#include "workloads/tables.hh"

int
main()
{
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();

    std::printf("streamcluster across input dimensions "
                "(simulated i7-860)\n\n");
    std::printf("%-9s %12s %10s %8s\n", "input", "Tm1/Tc", "speedup",
                "D-MTL");
    for (const auto &entry : tt::workloads::tables::kStreamcluster) {
        const auto graph =
            tt::workloads::streamclusterSim(machine, entry.dim);

        tt::core::ConventionalPolicy conventional(machine.contexts());
        const double base =
            tt::simrt::runOnce(machine, graph, conventional).seconds;

        tt::core::DynamicThrottlePolicy dynamic(machine.contexts(), 16);
        const auto run = tt::simrt::runOnce(machine, graph, dynamic);
        const int mtl =
            run.mtl_trace.empty() ? 0 : run.mtl_trace.back().second;

        std::printf("SC_d%-5d %11.2f%% %9.3fx %8d\n", entry.dim,
                    entry.ratio * 100.0, base / run.seconds, mtl);
    }
    std::printf("\nratios <= 33%% settle at D-MTL=1; heavier inputs "
                "settle at 2 (cf. paper Fig. 17)\n");
    return 0;
}
