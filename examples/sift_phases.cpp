/**
 * @file
 * Example: phase-adaptive throttling on the SIFT pipeline.
 *
 * Runs the 14-function SIFT scale-space pipeline on the simulated
 * quad-core, once without throttling and once under the dynamic
 * mechanism, then prints the per-phase memory-to-compute ratios and
 * the D-MTL trace -- the paper's Fig. 16 story: ECONVOLVE (ratio
 * ~70%) wants MTL=2 while ECONVOLVE2 (~8%) wants MTL=1, and the
 * run-time mechanism switches between them automatically.
 */

#include <cstdio>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "workloads/sift.hh"

int
main()
{
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    const auto graph = tt::workloads::siftSim(machine);

    tt::core::ConventionalPolicy conventional(machine.contexts());
    const auto base = tt::simrt::runOnce(machine, graph, conventional);

    tt::core::DynamicThrottlePolicy dynamic(machine.contexts(), 16);
    const auto run = tt::simrt::runOnce(machine, graph, dynamic);

    std::printf("SIFT pipeline on the simulated i7-860 "
                "(4 cores, 1 DIMM)\n\n");
    std::printf("%-14s %10s %10s %9s\n", "phase", "T_m (us)", "T_c (us)",
                "T_m/T_c");
    for (const auto &phase : run.phases) {
        std::printf("%-14s %10.1f %10.1f %8.1f%%\n", phase.name.c_str(),
                    phase.tm_mean * 1e6, phase.tc_mean * 1e6,
                    100.0 * phase.tm_mean / phase.tc_mean);
    }

    std::printf("\nconventional: %.3f ms, dynamic: %.3f ms  ->  "
                "%.3fx speedup\n",
                base.seconds * 1e3, run.seconds * 1e3,
                base.seconds / run.seconds);
    std::printf("selections: %ld, MTL switches: %ld\n",
                run.policy_stats.selections,
                run.policy_stats.mtl_switches);
    std::printf("D-MTL trace (time ms -> MTL):");
    for (const auto &[time, mtl] : run.mtl_trace)
        std::printf("  %.2f->%d", time * 1e3, mtl);
    std::printf("\n");
    return 0;
}
