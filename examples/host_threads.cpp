/**
 * @file
 * Example: the real-thread runtime (the paper's actual prototype).
 *
 * Builds the Fig. 12 synthetic kernel with real host loops, runs it
 * on a std::thread worker pool with the lock+counter MTL gate, and
 * compares the conventional schedule against dynamic throttling.
 *
 * Note: speedups on an arbitrary host depend on its core count and
 * memory system (this is exactly why the paper's evaluation is
 * reproduced on the deterministic simulated machine -- see
 * DESIGN.md); this example demonstrates the runtime API and the
 * scheduling mechanics on real threads.
 *
 * Usage: host_threads [threads] [count]
 *   threads: worker threads (default 2)
 *   count:   compute-loop repetitions per task (default 8)
 */

#include <cstdio>
#include <cstdlib>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "runtime/runtime.hh"
#include "util/stats.hh"
#include "workloads/synthetic.hh"

int
main(int argc, char **argv)
{
    const int threads = argc > 1 ? std::atoi(argv[1]) : 2;
    const int count = argc > 2 ? std::atoi(argv[2]) : 8;
    if (threads < 1 || count < 0) {
        std::fprintf(stderr, "usage: host_threads [threads>=1] "
                             "[count>=0]\n");
        return 1;
    }

    tt::workloads::SyntheticParams params;
    params.footprint_bytes = 256 * 1024;
    params.pairs = 96;

    tt::runtime::RuntimeOptions options;
    options.threads = threads;

    // Conventional: memory tasks never throttled.
    auto conventional_workload =
        tt::workloads::buildSyntheticHost(params, count);
    tt::core::ConventionalPolicy conventional(threads);
    tt::runtime::Runtime base_rt(conventional_workload.graph,
                                 conventional, options);
    const auto base = base_rt.run();

    // Dynamic throttling on the same kernel, with the metrics
    // registry bound to both the policy and the runtime.
    auto throttled_workload =
        tt::workloads::buildSyntheticHost(params, count);
    tt::core::DynamicThrottlePolicy dynamic(threads, 8);
    tt::MetricsRegistry metrics;
    dynamic.bindMetrics(&metrics);
    options.metrics = &metrics;
    tt::runtime::Runtime dyn_rt(throttled_workload.graph, dynamic,
                                options);
    const auto run = dyn_rt.run();

    std::printf("host runtime, %d worker threads, %d pairs\n", threads,
                params.pairs);
    std::printf("conventional:      %8.3f ms  (avg T_m %.1f us, "
                "avg T_c %.1f us, peak concurrent memory tasks %d)\n",
                base.seconds * 1e3, base.avg_tm * 1e6,
                base.avg_tc * 1e6, base.peak_mem_in_flight);
    const int final_mtl =
        run.mtl_trace.empty() ? threads : run.mtl_trace.back().second;
    std::printf("dynamic throttle:  %8.3f ms  (D-MTL %d, %ld "
                "selections, peak concurrent memory tasks %d)\n",
                run.seconds * 1e3, final_mtl,
                run.policy_stats.selections, run.peak_mem_in_flight);
    std::printf("speedup on this host: %.3fx\n",
                base.seconds / run.seconds);
    std::printf("\nmetrics of the throttled run:\n%s",
                metrics.summaryTable().c_str());
    return 0;
}
