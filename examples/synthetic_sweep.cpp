/**
 * @file
 * Example: a miniature of the paper's Figure 13 experiment.
 *
 * Sweeps the synthetic workload's memory-to-compute ratio on the
 * simulated i7, runs every static MTL, and prints the measured
 * speedup of the best MTL (S-MTL) next to the analytical model's
 * prediction -- showing how the best constraint moves from MTL=1 to
 * higher values as workloads become more memory-bound.
 *
 * Usage: synthetic_sweep [step] [footprint_kb]
 */

#include <cstdio>
#include <cstdlib>

#include "core/analytical_model.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "workloads/synthetic.hh"

int
main(int argc, char **argv)
{
    const double step = argc > 1 ? std::atof(argv[1]) : 0.25;
    const std::uint64_t footprint_kb =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 512;
    if (step <= 0.0 || footprint_kb == 0) {
        std::fprintf(stderr,
                     "usage: synthetic_sweep [step>0] [footprint_kb]\n");
        return 1;
    }

    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    const int n = machine.contexts();

    std::printf("ratio   S-MTL   measured   model   (footprint %lu KB)\n",
                static_cast<unsigned long>(footprint_kb));
    for (double ratio = step; ratio <= 4.0 + 1e-9; ratio += step) {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = ratio;
        params.footprint_bytes = footprint_kb * 1024;
        params.pairs = 48;
        const auto graph =
            tt::workloads::buildSyntheticSim(machine, params);

        double base_seconds = 0.0;
        double base_tm = 0.0;
        double best = 0.0;
        int s_mtl = n;
        double model = 1.0;
        for (int k = n; k >= 1; --k) {
            tt::core::StaticMtlPolicy policy(k, n);
            const auto run = tt::simrt::runOnce(machine, graph, policy);
            if (k == n) {
                base_seconds = run.seconds;
                base_tm = run.avg_tm;
            }
            const double speedup = base_seconds / run.seconds;
            if (speedup > best) {
                best = speedup;
                s_mtl = k;
                model = tt::core::AnalyticalModel::speedup(
                    run.avg_tm, base_tm, run.avg_tc, k, n);
            }
        }
        std::printf("%5.2f   %5d   %8.3f   %5.3f\n", ratio, s_mtl, best,
                    model);
    }
    return 0;
}
